//! A pool worker: one thread owning one full engine replica.
//!
//! The worker's only interface is its bounded request queue. Every request
//! that depends on log state carries an offset, and the worker *catches up*
//! — replays log entries it has not applied yet — before serving it, so
//! ordering guarantees are local and simple:
//!
//! * The router is single-threaded per pool and assigns offsets under the
//!   log lock, so offsets arriving on one queue are non-decreasing.
//! * A `Write { offset }` therefore always finds `applied == offset` and
//!   executes the entry itself, capturing its outcome for the caller; the
//!   same entry reaches every other replica as plain replay.
//! * A `Read { min_offset }` first replays to `min_offset` — the log length
//!   at submit time — which is what makes read-your-writes hold on *any*
//!   replica, not just the session's affinity worker.
//!
//! The engine is constructed inside the spawned thread (its `Rc`-based
//! values never cross threads), and the thread itself is spawned with the
//! pool's configured stack size, so deep translations and non-tail `fix`
//! recursion get the same headroom [`polyview::engine::with_stack_size`]
//! provides on the single-engine path.

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::log::DeclLog;
use crate::telemetry::{RequestTrace, Telemetry};
use crate::PoolError;
use polyview::obs::{EventRecord, EventSink, SharedClock, SpanRecord};
use polyview::{Engine, EngineStats, Outcome, Profile};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// A request to a worker. Reply channels are rendezvous-sized
/// (`sync_channel(1)`); exactly one reply is ever sent, so a worker never
/// blocks on a reply — if the caller dropped its ticket, the reply is
/// discarded.
pub(crate) enum Request {
    /// Evaluate a read after replaying the log to at least `min_offset`.
    Read {
        src: String,
        min_offset: u64,
        reply: SyncSender<Result<String, PoolError>>,
        /// Telemetry context minted at submit (`None` when disabled, and
        /// always for control-plane probes).
        trace: Option<RequestTrace>,
    },
    /// Apply the log entry at `offset` (replaying any gap first) and reply
    /// with its outcome.
    Write {
        offset: u64,
        reply: SyncSender<Result<String, PoolError>>,
        trace: Option<RequestTrace>,
    },
    /// Serve a pipelined batch: one queue slot, one reply, one catch-up to
    /// `min_offset`, then every item in order on this replica. Write items
    /// were sequenced contiguously under the log lock at submit, so a
    /// read item placed after a write item observes that write — batches
    /// are read-your-writes *internally*, not just across requests.
    Batch {
        items: Vec<BatchItem>,
        min_offset: u64,
        /// Truncated source summary for the slow log (the items themselves
        /// carry only offsets for writes).
        src: String,
        reply: SyncSender<Vec<Result<String, PoolError>>>,
        trace: Option<RequestTrace>,
    },
    /// Replay the log to at least `upto` (eager write propagation; safe to
    /// drop when the queue is full — the next offset-carrying request
    /// replays the gap anyway).
    CatchUp { upto: u64 },
    /// Replay to at least `upto`, then reply with the applied offset.
    Barrier { upto: u64, reply: SyncSender<u64> },
    /// Reply with a full observability report.
    Stats { reply: SyncSender<WorkerReport> },
    /// Block until the gate's sender is dropped — a deterministic way to
    /// hold a worker busy (backpressure tests, demos).
    Pause { gate: Receiver<()> },
    /// Panic on purpose (supervision tests).
    Crash,
    /// Exit the serve loop (queue disconnection does the same).
    Shutdown,
}

/// One statement of a pipelined batch ([`Request::Batch`]). Writes were
/// already sequenced (the offset is the item's identity — the entry text
/// lives in the log); reads carry their source.
#[derive(Debug)]
pub(crate) enum BatchItem {
    Write { offset: u64 },
    Read { src: String },
}

/// One worker's observability snapshot, produced on its own thread (the
/// engine's metrics registry is `Rc`-based and cannot cross the channel
/// itself, so the JSON export is rendered worker-side).
#[derive(Clone, Debug)]
pub struct WorkerReport {
    pub worker: usize,
    /// Respawn generation: 0 for the original spawn, +1 per respawn.
    pub generation: u64,
    /// Log offset this replica has applied up to (exclusive).
    pub applied: u64,
    /// Replayed entries that failed (deterministic across replicas).
    pub replay_errors: u64,
    /// Log entries this incarnation replayed at bootstrap — the log tail
    /// above its boot checkpoint (or the whole log without one). The
    /// number the checkpoint tier exists to bound.
    pub respawn_replayed: u64,
    /// The replica's declaration epoch — equal on all replicas that have
    /// applied the same log prefix.
    pub env_epoch: u64,
    pub stats: EngineStats,
    /// The replica's full metrics registry as JSON lines.
    pub metrics_json: String,
    /// Requests whose evaluation was profiled
    /// ([`crate::PoolConfig::profile_sample_every`]).
    pub profile_samples: u64,
    /// The merged attribution profile of every sampled request, `None`
    /// until something has been sampled.
    pub profile: Option<Profile>,
}

/// Gauges shared between a worker and the router: current queue depth
/// (incremented at enqueue, decremented at dequeue), replay progress, and
/// replay error count.
#[derive(Debug, Default)]
pub(crate) struct WorkerShared {
    pub depth: AtomicU64,
    pub applied: AtomicU64,
    pub replay_errors: AtomicU64,
    /// Entries replayed by this incarnation's bootstrap (stored once,
    /// after catch-up; per-incarnation, not cumulative).
    pub respawn_replayed: AtomicU64,
    /// Checkpoints this incarnation has published.
    pub checkpoints: AtomicU64,
    /// Total nanoseconds this incarnation spent encoding checkpoints.
    pub checkpoint_ns: AtomicU64,
}

/// The engine-affecting slice of [`crate::PoolConfig`], shipped to the
/// worker thread at spawn.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WorkerCfg {
    pub fuel: Option<u64>,
    pub load_prelude: bool,
    pub profile_sample_every: Option<u64>,
    pub checkpoint_every: Option<u64>,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn worker_main(
    index: usize,
    generation: u64,
    cfg: WorkerCfg,
    log: Arc<DeclLog>,
    shared: Arc<WorkerShared>,
    telemetry: Arc<Telemetry>,
    checkpoints: Arc<CheckpointStore>,
    boot: Option<Checkpoint>,
    rx: Receiver<Request>,
    backlog: u64,
) {
    // Bootstrap from the newest checkpoint when one exists: restore the
    // checkpointed engine and start replay at its offset instead of 0. A
    // restored engine keeps the *snapshot's* remaining fuel rather than
    // taking a fresh `cfg.fuel` budget — fuel is a total per-replica
    // budget and the checkpoint producer already spent its share
    // deterministically; granting a refill at respawn would let a
    // crash-looping replica outrun its siblings.
    let (engine, boot_offset) = match &boot {
        Some(cp) => {
            let engine = Engine::from_snapshot(&cp.engine).unwrap_or_else(|e| {
                // In-memory checkpoint bytes are this binary's own encode
                // output and dir-loaded bytes were validated at open; a
                // decode failure here is corruption, not a recoverable
                // state — crash loudly and let supervision respawn (the
                // next boot re-reads the slot).
                panic!(
                    "pool worker {index}: checkpoint at offset {} failed to restore: {e}",
                    cp.offset
                )
            });
            (engine, cp.offset)
        }
        None => (
            match cfg.fuel {
                Some(f) => Engine::with_fuel(f),
                None => Engine::new(),
            },
            0,
        ),
    };
    let mut w = Worker {
        engine,
        log,
        shared,
        index,
        generation,
        applied: boot_offset,
        sample_every: cfg.profile_sample_every,
        served: 0,
        profile_acc: Profile::default(),
        profile_samples: 0,
        checkpoints,
        checkpoint_every: cfg.checkpoint_every,
        respawn_replayed: 0,
    };
    w.shared.applied.store(w.applied, Ordering::Relaxed);
    if telemetry.enabled {
        // Put the replica's engine on the pool's shared timeline and
        // forward its phase spans (parse/infer/translate/eval) into the
        // shared event stream, tagged with the serving request's trace id
        // — this is what stitches the router's and the replica's views of
        // one request together. Only wired when telemetry is on: the
        // disabled pool never touches the shared clock or sink.
        w.engine
            .set_clock(Rc::new(ClockBridge(Arc::clone(&telemetry.clock))));
        w.engine.set_trace_sink(Rc::new(SpanBridge {
            sink: Arc::clone(&telemetry.sink),
            worker: index,
            generation,
        }));
    }
    let telemetry = &*telemetry;
    if cfg.load_prelude && boot.is_none() {
        // Deterministic: every replica loads the same prelude before any
        // log entry, so epochs stay aligned. A checkpointed engine
        // already contains the prelude state — loading it again would
        // double the declarations and desync epochs.
        let _ = w.engine.load_prelude();
    }
    // A respawned replica replays only the log tail above its boot
    // checkpoint (the whole log when none exists) before serving
    // anything. `backlog` is the log length observed *on the router
    // thread* at spawn time, read *after* the checkpoint slot — that
    // order guarantees `backlog >= boot_offset`, and reading `log.len()`
    // here instead would race with a write sequenced after the spawn,
    // whose `Write { offset }` request is already in this queue and must
    // find its entry unapplied.
    w.catch_up(backlog);
    w.respawn_replayed = w.applied - boot_offset;
    w.shared
        .respawn_replayed
        .store(w.respawn_replayed, Ordering::Relaxed);

    while let Ok(req) = rx.recv() {
        // Saturating: every routed request increments the gauge before it
        // is sent, but shutdown's best-effort `Shutdown` bypasses the
        // accounting — clamp at zero rather than wrapping the gauge.
        let _ = w
            .shared
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
        match req {
            Request::Read {
                src,
                min_offset,
                reply,
                trace,
            } => {
                let serve = w.begin_serve(telemetry, trace);
                let before = w.applied;
                w.catch_up(min_offset);
                let serve = w.note_catchup(telemetry, serve, w.applied - before);
                let sampled = w.maybe_profile_start();
                let res = w.eval_read(&src);
                let profile = w.maybe_profile_stop(sampled);
                w.finish_serve(telemetry, serve, res.is_ok(), &src, profile);
                let _ = reply.try_send(res);
            }
            Request::Write {
                offset,
                reply,
                trace,
            } => {
                let serve = w.begin_serve(telemetry, trace);
                // Time the *gap* replay separately from the write itself:
                // after this catch-up, `apply_write`'s own catch-up is a
                // no-op and the write's cost lands in the engine phases.
                let before = w.applied;
                w.catch_up(offset);
                let serve = w.note_catchup(telemetry, serve, w.applied - before);
                let src = serve
                    .is_some()
                    .then(|| w.log.get(offset).ok().flatten())
                    .flatten()
                    .unwrap_or_default();
                let sampled = w.maybe_profile_start();
                let res = w.apply_write(offset);
                let profile = w.maybe_profile_stop(sampled);
                w.finish_serve(telemetry, serve, res.is_ok(), &src, profile);
                let _ = reply.try_send(res);
            }
            Request::Batch {
                items,
                min_offset,
                src,
                reply,
                trace,
            } => {
                let serve = w.begin_serve(telemetry, trace);
                let before = w.applied;
                w.catch_up(min_offset);
                let serve = w.note_catchup(telemetry, serve, w.applied - before);
                let sampled = w.maybe_profile_start();
                let mut results = Vec::with_capacity(items.len());
                let mut all_ok = true;
                for item in items {
                    let res = match item {
                        BatchItem::Write { offset } => w.apply_write(offset),
                        BatchItem::Read { src } => w.eval_read(&src),
                    };
                    all_ok &= res.is_ok();
                    results.push(res);
                }
                let profile = w.maybe_profile_stop(sampled);
                w.finish_serve(telemetry, serve, all_ok, &src, profile);
                let _ = reply.try_send(results);
            }
            Request::CatchUp { upto } => w.catch_up(upto),
            Request::Barrier { upto, reply } => {
                w.catch_up(upto);
                let _ = reply.try_send(w.applied);
            }
            Request::Stats { reply } => {
                let _ = reply.try_send(w.report(index, generation));
            }
            Request::Pause { gate } => {
                // Held until the router-side WorkerGate drops its sender.
                let _ = gate.recv();
            }
            Request::Crash => panic!("pool worker {index}: injected crash"),
            Request::Shutdown => break,
        }
    }
}

struct Worker {
    engine: Engine,
    log: Arc<DeclLog>,
    shared: Arc<WorkerShared>,
    index: usize,
    generation: u64,
    /// Entries applied so far (exclusive upper offset). Mirrored into
    /// `shared.applied` for the router's lag gauge.
    applied: u64,
    /// Profile every Nth served request (`None`: never).
    sample_every: Option<u64>,
    /// Read/write requests served (the sampling counter; replay and
    /// control requests don't count).
    served: u64,
    /// Merged profile of every sampled request on this replica.
    profile_acc: Profile,
    profile_samples: u64,
    /// The pool's shared checkpoint slot (publish side).
    checkpoints: Arc<CheckpointStore>,
    /// Publish a checkpoint every N applied entries (`None`: never).
    checkpoint_every: Option<u64>,
    /// Entries this incarnation replayed at bootstrap.
    respawn_replayed: u64,
}

/// Worker-side timing state for one traced request, between dequeue and
/// completion.
struct ServeTrace {
    trace: RequestTrace,
    dequeued_ns: u64,
    queue_wait_ns: u64,
    catchup_ns: u64,
}

/// Adapts the pool's [`SharedClock`] to the engine's single-threaded
/// [`polyview::obs::Clock`], so engine phase spans live on the same
/// timeline as the pool lifecycle events.
struct ClockBridge(Arc<dyn SharedClock>);

impl polyview::obs::Clock for ClockBridge {
    fn now_ns(&self) -> u64 {
        self.0.now_ns()
    }
}

/// Forwards the engine's phase [`SpanRecord`]s into the pool's shared
/// [`EventSink`] as `engine.*` events. The trace id is recovered from the
/// `request_id` span tag ([`polyview::Engine::set_span_tag`], stamped by
/// [`Worker::begin_serve`]); spans from untagged work — replay, prelude
/// load — carry trace id 0 and no parent.
struct SpanBridge {
    sink: Arc<dyn EventSink>,
    worker: usize,
    generation: u64,
}

impl polyview::obs::TraceSink for SpanBridge {
    fn emit(&self, span: &SpanRecord) {
        let trace_id = span
            .attrs
            .iter()
            .find(|(k, _)| k == "request_id")
            .map(|&(_, v)| v)
            .unwrap_or(0);
        let mut attrs: Vec<(String, u64)> = span
            .attrs
            .iter()
            .filter(|(k, _)| k != "request_id")
            .cloned()
            .collect();
        attrs.push(("worker".to_string(), self.worker as u64));
        attrs.push(("generation".to_string(), self.generation));
        self.sink.emit(&EventRecord {
            name: format!("engine.{}", span.name),
            trace_id,
            parent: (trace_id != 0).then_some(trace_id),
            start_ns: span.start_ns,
            dur_ns: span.dur_ns,
            attrs,
        });
    }
}

impl Worker {
    /// Traced-request prologue: stamp the dequeue (queue-wait event +
    /// histogram) and tag the engine so its phase spans carry the trace
    /// id. Untraced requests pass straight through (`None`).
    fn begin_serve(
        &mut self,
        telemetry: &Telemetry,
        trace: Option<RequestTrace>,
    ) -> Option<ServeTrace> {
        let trace = trace?;
        let dequeued_ns = telemetry.note_dequeued(&trace, self.index, self.generation);
        self.engine.set_span_tag("request_id", trace.id);
        Some(ServeTrace {
            trace,
            dequeued_ns,
            queue_wait_ns: dequeued_ns.saturating_sub(trace.enqueued_ns),
            catchup_ns: 0,
        })
    }

    /// Stamp the end of pre-serve log replay (catch-up event + histogram).
    fn note_catchup(
        &mut self,
        telemetry: &Telemetry,
        serve: Option<ServeTrace>,
        replayed: u64,
    ) -> Option<ServeTrace> {
        let mut serve = serve?;
        serve.catchup_ns = telemetry.note_catchup(&serve.trace, serve.dequeued_ns, replayed);
        Some(serve)
    }

    /// Traced-request epilogue: untag the engine, stamp completion (e2e
    /// event + histogram), and feed the slow log.
    fn finish_serve(
        &mut self,
        telemetry: &Telemetry,
        serve: Option<ServeTrace>,
        ok: bool,
        src: &str,
        profile: Option<Profile>,
    ) {
        let Some(serve) = serve else { return };
        self.engine.clear_span_tag();
        telemetry.note_completed(
            &serve.trace,
            self.index,
            self.generation,
            ok,
            serve.queue_wait_ns,
            serve.catchup_ns,
            src,
            profile,
        );
    }

    /// Sampling prologue: count the request and, when it lands on the
    /// sample grid (first request, then every Nth), attach the profiler.
    /// Returns whether this request is being profiled.
    fn maybe_profile_start(&mut self) -> bool {
        let Some(n) = self.sample_every else {
            return false;
        };
        let sampled = self.served.is_multiple_of(n);
        self.served += 1;
        if sampled {
            self.engine.start_profiling();
        }
        sampled
    }

    /// Sampling epilogue: detach the profiler, merge what it saw into the
    /// worker's accumulated profile, and hand back the request's own
    /// profile (for the slow log).
    fn maybe_profile_stop(&mut self, sampled: bool) -> Option<Profile> {
        if !sampled {
            return None;
        }
        let profile = self.engine.stop_profiling()?;
        self.profile_acc.absorb(&profile);
        self.profile_samples += 1;
        Some(profile)
    }
    /// Replay log entries until `applied >= upto`. Entry errors are
    /// deterministic across replicas (same entry, same engine state), so
    /// they are counted, never propagated — exactly
    /// [`polyview::Engine::replay`]'s contract, incrementalized.
    fn catch_up(&mut self, upto: u64) {
        while self.applied < upto {
            let entry = match self.log.get(self.applied) {
                Ok(Some(entry)) => entry,
                // Not sequenced yet: the caller's `upto` was a stale log
                // length; later offset-carrying requests replay the gap.
                Ok(None) => break,
                // Below the truncation point: the router only compacts
                // offsets every replica (and every future bootstrap, via
                // the checkpoint) is past, so this replica's state is
                // unaccountable — crash rather than skip history.
                Err(truncated) => {
                    panic!("pool worker {}: {truncated}", self.index)
                }
            };
            let _ = self.apply_entry(&entry);
        }
    }

    fn apply_entry(&mut self, src: &str) -> Result<String, PoolError> {
        let res = self
            .engine
            .exec(src)
            .map(|out| render_outcomes(&out))
            .map_err(PoolError::from);
        if res.is_err() {
            self.shared.replay_errors.fetch_add(1, Ordering::Relaxed);
        }
        self.applied += 1;
        self.shared.applied.store(self.applied, Ordering::Relaxed);
        self.maybe_checkpoint();
        res
    }

    /// Publish a checkpoint when this apply landed on the checkpoint grid
    /// and nobody has checkpointed this far yet. Sits in the apply path —
    /// not the write path — so catch-up replay also makes progress
    /// checkpoints: a replica replaying a long tail re-arms the bound for
    /// the *next* crash as it goes.
    fn maybe_checkpoint(&mut self) {
        let Some(every) = self.checkpoint_every else {
            return;
        };
        if self.applied == 0 || !self.applied.is_multiple_of(every) {
            return;
        }
        // Replicas apply the same prefix, so a checkpoint at or past this
        // offset makes ours redundant — skip the encode entirely.
        if self
            .checkpoints
            .latest_offset()
            .is_some_and(|o| o >= self.applied)
        {
            return;
        }
        let start = std::time::Instant::now();
        let engine = self.engine.snapshot();
        self.checkpoints.publish(Checkpoint {
            offset: self.applied,
            engine: engine.into(),
        });
        self.shared.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.shared
            .checkpoint_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Apply the write sequenced at `offset`, capturing its outcome.
    /// Per-queue offsets are non-decreasing (router invariant), so by the
    /// time this dequeues, `catch_up(offset)` leaves `applied == offset`.
    fn apply_write(&mut self, offset: u64) -> Result<String, PoolError> {
        self.catch_up(offset);
        if self.applied != offset {
            return Err(PoolError::Internal(format!(
                "write at offset {offset} already replayed (applied = {})",
                self.applied
            )));
        }
        let entry = match self.log.get(offset) {
            Ok(Some(entry)) => entry,
            Ok(None) => {
                return Err(PoolError::Internal(format!(
                    "write at offset {offset} not in the log (len = {})",
                    self.log.len()
                )));
            }
            Err(truncated) => {
                return Err(PoolError::Internal(truncated.to_string()));
            }
        };
        self.apply_entry(&entry)
    }

    /// Serve a read. The hot path is a single expression through the
    /// engine's statement cache (repeats cost zero parse/inference work);
    /// a read-classified *program* (e.g. `"1 + 1; 2 + 2;"`) falls back to
    /// uncached execution.
    fn eval_read(&mut self, src: &str) -> Result<String, PoolError> {
        match self.engine.eval_to_string(src) {
            Ok(s) => Ok(s),
            Err(polyview::Error::Parse(_)) => self
                .engine
                .exec(src)
                .map(|out| render_outcomes(&out))
                .map_err(PoolError::from),
            Err(e) => Err(e.into()),
        }
    }

    fn report(&self, index: usize, generation: u64) -> WorkerReport {
        WorkerReport {
            worker: index,
            generation,
            applied: self.applied,
            replay_errors: self.shared.replay_errors.load(Ordering::Relaxed),
            respawn_replayed: self.respawn_replayed,
            env_epoch: self.engine.env_epoch(),
            stats: self.engine.stats(),
            metrics_json: self.engine.metrics_json(),
            profile_samples: self.profile_samples,
            profile: (self.profile_samples > 0).then(|| self.profile_acc.clone()),
        }
    }
}

/// Render an executed statement's outcomes the way the REPL would: one
/// line per declaration, `name : scheme` for bindings, the rendered value
/// for bare expressions.
fn render_outcomes(out: &[Outcome]) -> String {
    let lines: Vec<String> = out
        .iter()
        .map(|o| match o {
            Outcome::Defined(binds) => binds
                .iter()
                .map(|(n, s)| format!("{n} : {s}"))
                .collect::<Vec<_>>()
                .join(", "),
            Outcome::Value { rendered, .. } => rendered.clone(),
        })
        .collect();
    lines.join("\n")
}

//! Pool-level observability: per-worker reports merged into one fleet
//! snapshot, plus a JSON-lines metrics export.
//!
//! Each replica's metrics registry is `Rc`-based and thread-confined, so
//! aggregation is by message, not by sharing: a `Stats` request makes the
//! worker snapshot its own counters and render its own registry, and the
//! pool merges the snapshots ([`polyview::EngineStats::merged`]) and
//! re-namespaces the registries (`worker3.phase.eval_ns`, …). On top of
//! the engine counters the pool adds what only it can see: queue depths,
//! replay lag (log length minus applied offset), submit/backpressure
//! counters, and respawns.

use crate::router::Pool;
use crate::telemetry::SlowRequest;
use crate::worker::{Request, WorkerReport};
use polyview::obs::{HistogramSnapshot, Registry};
use polyview::EngineStats;
use std::sync::atomic::Ordering;
use std::sync::mpsc::sync_channel;

/// One replica's slice of [`PoolStats`].
#[derive(Clone, Debug)]
pub struct WorkerStats {
    pub worker: usize,
    /// Respawn generation (0 = original spawn).
    pub generation: u64,
    /// Log offset applied (exclusive).
    pub applied: u64,
    /// Writes sequenced but not yet applied by this replica.
    pub replay_lag: u64,
    /// Requests currently queued for this replica.
    pub queue_depth: u64,
    /// Replayed entries that failed (identical across in-sync replicas).
    pub replay_errors: u64,
    /// Log entries this incarnation replayed at bootstrap: the tail above
    /// its boot checkpoint, or the whole log without one. The acceptance
    /// number for bounded recovery — crash at offset L with a checkpoint
    /// at K means exactly L−K here.
    pub respawn_replayed: u64,
    /// The replica's declaration epoch.
    pub env_epoch: u64,
    pub engine: EngineStats,
    /// Requests whose evaluation was profiled on this replica
    /// ([`crate::PoolConfig::profile_sample_every`]); 0 when sampling is
    /// off.
    pub profile_samples: u64,
    /// The merged attribution profile of this replica's sampled requests.
    pub profile: Option<polyview::Profile>,
}

/// A fleet-level snapshot: pool counters plus every replica's state and
/// the component-wise sum of their engine counters.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    pub workers: usize,
    /// Writes sequenced through the declaration log.
    pub log_len: u64,
    pub submitted_reads: u64,
    pub submitted_writes: u64,
    /// Submissions rejected with [`crate::Submit::Full`] (backpressure).
    pub rejected_full: u64,
    /// Workers respawned after a panic, each caught up by full log replay.
    pub respawns: u64,
    /// Merged engine counters across all replicas.
    pub engine: EngineStats,
    pub per_worker: Vec<WorkerStats>,
    /// Time spent queued, enqueue → dequeue (telemetry-tracked requests
    /// only; empty when telemetry is off).
    pub queue_wait: HistogramSnapshot,
    /// Pre-serve log replay time.
    pub catchup: HistogramSnapshot,
    /// End-to-end latency of reads, submit → completion.
    pub e2e_read: HistogramSnapshot,
    /// End-to-end latency of writes.
    pub e2e_write: HistogramSnapshot,
    /// The slow-request ring (oldest first); see [`Pool::slow_requests`].
    pub slow_requests: Vec<SlowRequest>,
}

impl std::fmt::Display for PoolStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pool       workers={} log={} reads={} writes={} full={} respawns={}",
            self.workers,
            self.log_len,
            self.submitted_reads,
            self.submitted_writes,
            self.rejected_full,
            self.respawns
        )?;
        for w in &self.per_worker {
            writeln!(
                f,
                "worker {}   gen={} applied={} lag={} depth={} replay-errors={} respawn-replayed={} epoch={}",
                w.worker,
                w.generation,
                w.applied,
                w.replay_lag,
                w.queue_depth,
                w.replay_errors,
                w.respawn_replayed,
                w.env_epoch
            )?;
            if let Some(p) = &w.profile {
                let hot = p.hot_nodes();
                let hottest = hot
                    .first()
                    .map(|h| format!("{} {}", h.kind, h.span))
                    .unwrap_or_else(|| "-".to_string());
                writeln!(
                    f,
                    "profile {}  samples={} nodes={} fallback-sites={} hottest={:?}",
                    w.worker,
                    w.profile_samples,
                    p.node_count(),
                    p.fallback_sites.len(),
                    hottest
                )?;
            }
        }
        for (name, h) in [
            ("queue_wait", &self.queue_wait),
            ("catchup   ", &self.catchup),
            ("e2e read  ", &self.e2e_read),
            ("e2e write ", &self.e2e_write),
        ] {
            if h.count > 0 {
                writeln!(
                    f,
                    "latency    {name} n={} p50={}ns p95={}ns p99={}ns max={}ns",
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max
                )?;
            }
        }
        for s in &self.slow_requests {
            writeln!(
                f,
                "slow       id={} session={} worker={} gen={} class={} e2e={}ns queue={}ns catchup={}ns src={:?}",
                s.id,
                s.session,
                s.worker,
                s.generation,
                s.class,
                s.e2e_ns,
                s.queue_wait_ns,
                s.catchup_ns,
                s.src
            )?;
        }
        write!(f, "{}", self.engine)
    }
}

impl Pool {
    /// Snapshot the whole fleet. Dead workers are respawned first (the
    /// respawn shows up in [`PoolStats::respawns`]), so every row reports
    /// a live replica.
    pub fn stats(&mut self) -> PoolStats {
        let reports = self.collect_reports();
        self.assemble(&reports)
    }

    /// Pool-side counters only — no worker round-trip, so safe to call
    /// while a replica is paused or wedged (`per_worker` and the merged
    /// engine counters are empty).
    pub fn stats_local(&self) -> PoolStats {
        PoolStats {
            workers: self.workers.len(),
            log_len: self.log.len(),
            submitted_reads: self.submitted_reads,
            submitted_writes: self.submitted_writes,
            rejected_full: self.rejected_full,
            respawns: self.respawns,
            engine: EngineStats::default(),
            per_worker: Vec::new(),
            queue_wait: self.telemetry.queue_wait_ns.snapshot(),
            catchup: self.telemetry.catchup_ns.snapshot(),
            e2e_read: self.telemetry.e2e_read_ns.snapshot(),
            e2e_write: self.telemetry.e2e_write_ns.snapshot(),
            slow_requests: self.telemetry.slow_requests(),
        }
    }

    /// Export pool metrics as JSON lines, in three layers:
    ///
    /// 1. `pool.*` counters — submissions, backpressure rejections,
    ///    respawns, log length — and per-worker `pool.workerN.queue_depth`
    ///    / `pool.workerN.replay_lag` / `pool.workerN.applied` **gauges**
    ///    (`"kind":"gauge"`: levels, not monotone counts);
    /// 2. merged engine counters under their usual names
    ///    (`engine.parses`, `types.unify_steps`, …), summed across
    ///    replicas;
    /// 3. the pool's request-latency histograms (`pool.queue_wait_ns`,
    ///    `pool.catchup_ns`, `pool.e2e_read_ns`, `pool.e2e_write_ns` —
    ///    all zero while telemetry is disabled) and one
    ///    `pool.slow_requests` gauge;
    /// 4. every replica's full registry (histograms included),
    ///    re-namespaced as `workerN.<metric>`.
    ///
    /// Same format contract as [`polyview::Engine::metrics_json`]: exactly
    /// one JSON object per line.
    pub fn metrics_json(&mut self) -> String {
        let reports = self.collect_reports();
        let stats = self.assemble(&reports);

        let reg = Registry::new();
        reg.counter("pool.workers").set(stats.workers as u64);
        reg.counter("pool.log_len").set(stats.log_len);
        reg.counter("pool.submitted_reads")
            .set(stats.submitted_reads);
        reg.counter("pool.submitted_writes")
            .set(stats.submitted_writes);
        reg.counter("pool.rejected_full").set(stats.rejected_full);
        reg.counter("pool.respawns").set(stats.respawns);
        reg.counter("pool.log_base").set(self.log.base());
        let mut checkpoints = 0u64;
        let mut checkpoint_ns = 0u64;
        let mut respawn_replayed = 0u64;
        for w in &self.workers {
            checkpoints = checkpoints.saturating_add(w.shared.checkpoints.load(Ordering::Relaxed));
            checkpoint_ns =
                checkpoint_ns.saturating_add(w.shared.checkpoint_ns.load(Ordering::Relaxed));
            respawn_replayed =
                respawn_replayed.saturating_add(w.shared.respawn_replayed.load(Ordering::Relaxed));
        }
        reg.counter("pool.checkpoints").set(checkpoints);
        reg.counter("pool.checkpoint_ns").set(checkpoint_ns);
        reg.counter("pool.respawn_replayed").set(respawn_replayed);
        reg.gauge("pool.slow_requests")
            .set(stats.slow_requests.len() as u64);
        for w in &stats.per_worker {
            let i = w.worker;
            reg.gauge(&format!("pool.worker{i}.queue_depth"))
                .set(w.queue_depth);
            reg.gauge(&format!("pool.worker{i}.replay_lag"))
                .set(w.replay_lag);
            reg.gauge(&format!("pool.worker{i}.applied")).set(w.applied);
            reg.gauge(&format!("pool.worker{i}.respawn_replayed"))
                .set(w.respawn_replayed);
            reg.gauge(&format!("pool.worker{i}.profile_samples"))
                .set(w.profile_samples);
        }
        set_engine_counters(&reg, &stats.engine);
        let mut out = reg.to_json_lines();
        // The shared telemetry registry renders its own lines (same
        // one-object-per-line contract): the latency histograms.
        out.push_str(&self.telemetry.registry.to_json_lines());

        for r in reports.iter().flatten() {
            let prefix = format!("\"name\":\"worker{}.", r.worker);
            for line in r.metrics_json.lines() {
                out.push_str(&line.replacen("\"name\":\"", &prefix, 1));
                out.push('\n');
            }
        }
        out
    }

    /// Ask every worker for a report. A worker that dies between the
    /// supervision check and the reply is respawned and asked once more;
    /// if the respawn dies too, its slot reports `None` rather than
    /// wedging the stats path.
    fn collect_reports(&mut self) -> Vec<Option<WorkerReport>> {
        self.supervise();
        (0..self.workers.len())
            .map(|i| {
                self.request_report(i).or_else(|| {
                    self.supervise();
                    self.request_report(i)
                })
            })
            .collect()
    }

    fn request_report(&mut self, worker: usize) -> Option<WorkerReport> {
        let (reply, rx) = sync_channel(1);
        self.blocking_send(worker, Request::Stats { reply }).ok()?;
        rx.recv().ok()
    }

    fn assemble(&self, reports: &[Option<WorkerReport>]) -> PoolStats {
        let log_len = self.log.len();
        let mut engine = EngineStats::default();
        let mut per_worker = Vec::with_capacity(reports.len());
        for (i, report) in reports.iter().enumerate() {
            let Some(r) = report else { continue };
            engine = engine.merged(r.stats);
            per_worker.push(WorkerStats {
                worker: r.worker,
                generation: r.generation,
                applied: r.applied,
                replay_lag: log_len.saturating_sub(r.applied),
                queue_depth: self.workers[i].shared.depth.load(Ordering::Relaxed),
                replay_errors: r.replay_errors,
                respawn_replayed: r.respawn_replayed,
                env_epoch: r.env_epoch,
                engine: r.stats,
                profile_samples: r.profile_samples,
                profile: r.profile.clone(),
            });
        }
        PoolStats {
            workers: self.workers.len(),
            log_len,
            submitted_reads: self.submitted_reads,
            submitted_writes: self.submitted_writes,
            rejected_full: self.rejected_full,
            respawns: self.respawns,
            engine,
            per_worker,
            queue_wait: self.telemetry.queue_wait_ns.snapshot(),
            catchup: self.telemetry.catchup_ns.snapshot(),
            e2e_read: self.telemetry.e2e_read_ns.snapshot(),
            e2e_write: self.telemetry.e2e_write_ns.snapshot(),
            slow_requests: self.telemetry.slow_requests(),
        }
    }
}

/// Mirror a merged [`EngineStats`] into a registry under the same metric
/// names each engine uses locally, so fleet dashboards read one namespace.
fn set_engine_counters(reg: &Registry, s: &EngineStats) {
    reg.counter("engine.parses").set(s.parses);
    reg.counter("engine.inferences").set(s.inferences);
    reg.counter("engine.stmt_cache_hits").set(s.stmt_cache_hits);
    reg.counter("engine.stmt_cache_misses")
        .set(s.stmt_cache_misses);
    reg.counter("engine.stmt_cache_evictions")
        .set(s.stmt_cache_evictions);
    reg.counter("engine.stmt_cache_dep_invalidations")
        .set(s.stmt_cache_dep_invalidations);
    reg.counter("engine.epoch_invalidations")
        .set(s.epoch_invalidations);
    reg.counter("parser.tokens_lexed").set(s.tokens_lexed);
    reg.counter("parser.nodes_parsed").set(s.nodes_parsed);
    reg.counter("types.unify_steps").set(s.unify_steps);
    reg.counter("types.occurs_checks").set(s.occurs_checks);
    reg.counter("types.kind_merges").set(s.kind_merges);
    reg.counter("types.instantiations").set(s.instantiations);
    reg.counter("eval.fuel_consumed").set(s.fuel_consumed);
    reg.counter("eval.records_allocated")
        .set(s.records_allocated);
    reg.counter("eval.sets_allocated").set(s.sets_allocated);
    reg.counter("eval.field_offsets_resolved")
        .set(s.field_offsets_resolved);
    reg.counter("eval.dyn_field_fallbacks")
        .set(s.dyn_field_fallbacks);
}

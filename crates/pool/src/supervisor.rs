//! Worker supervision: spawning, liveness detection, and respawn-with-
//! replay.
//!
//! The failure model is crash-only: a worker that panics (evaluator bug,
//! injected crash) takes its whole replica down — there is no partial
//! state to repair, because the replacement rebuilds the replica
//! deterministically: it restores the pool's newest checkpoint
//! ([`crate::checkpoint::CheckpointStore`]) when one exists and replays
//! only the declaration-log tail above it ([`crate::log::DeclLog`]) —
//! from offset 0 when no checkpoint has been published yet. In-flight requests on the dead worker's
//! queue are lost; their tickets resolve to
//! [`crate::PoolError::WorkerLost`] (the reply senders drop with the
//! queue). What a caller does next depends on what was lost: a **read**
//! had no effect and is safely resubmitted, but a **write** was sequenced
//! into the log *before* it was enqueued, so the respawn's replay (and
//! every other replica) applies it anyway — only its outcome string is
//! gone, and resubmitting would double-apply it. `WorkerLost::sequenced`
//! carries the write's log offset so callers can tell the two apart.
//!
//! Supervision is pull-based: the router checks `JoinHandle::is_finished`
//! on every pool interaction ([`Pool::supervise`]) rather than running a
//! monitor thread — a dead worker is respawned before the next request
//! could be routed to it, which is the only moment liveness matters.

use crate::checkpoint::CheckpointStore;
use crate::log::DeclLog;
use crate::router::Pool;
use crate::telemetry::Telemetry;
use crate::worker::{worker_main, Request, WorkerCfg, WorkerShared};
use crate::PoolConfig;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The router's handle on one worker slot.
pub(crate) struct WorkerHandle {
    /// Respawn generation of the thread currently in this slot.
    pub generation: u64,
    pub tx: SyncSender<Request>,
    pub join: JoinHandle<()>,
    pub shared: Arc<WorkerShared>,
}

/// Spawn a worker thread for `index` at `generation`. The thread gets the
/// pool's configured stack size — engines must never run on a default
/// spawned-thread stack (see [`polyview::engine::with_stack_size`]) — and
/// constructs its engine locally, since engines cannot cross threads.
pub(crate) fn spawn_worker(
    index: usize,
    generation: u64,
    cfg: &PoolConfig,
    log: &Arc<DeclLog>,
    telemetry: &Arc<Telemetry>,
    checkpoints: &Arc<CheckpointStore>,
) -> WorkerHandle {
    let (tx, rx) = sync_channel(cfg.queue_capacity);
    let shared = Arc::new(WorkerShared::default());
    let wcfg = WorkerCfg {
        fuel: cfg.fuel,
        load_prelude: cfg.load_prelude,
        profile_sample_every: cfg.profile_sample_every,
        checkpoint_every: cfg.checkpoint_every,
    };
    // The boot checkpoint and the replay horizon must both be read on
    // *this* (router) thread, checkpoint first: checkpoint offsets only
    // grow and never exceed the log head, so this order guarantees
    // `backlog >= boot.offset`. And the router is the only appender, so
    // no write can be sequenced between the `backlog` read and the handle
    // becoming routable — every offset >= `backlog` reaches the worker as
    // an explicit request. Reading the length on the worker thread
    // instead would race with a write sequenced right after spawn and
    // double-apply its entry.
    let boot = checkpoints.latest();
    let backlog = log.len();
    // Seed the lag gauge with the boot offset *before* the thread runs:
    // the router's compaction pass takes the min over `shared.applied`,
    // and a freshly spawned worker reporting 0 while bootstrapping from a
    // checkpoint at offset K would stall truncation (harmless) — but a
    // respawn during compaction must never make the pass think offset 0
    // is still needed when the replica will in fact never read below K.
    let boot_offset = boot.as_ref().map_or(0, |cp| cp.offset);
    shared.applied.store(boot_offset, Ordering::Relaxed);
    let join = std::thread::Builder::new()
        .name(format!("pool-worker-{index}"))
        .stack_size(cfg.stack_bytes)
        .spawn({
            let log = Arc::clone(log);
            let shared = Arc::clone(&shared);
            let telemetry = Arc::clone(telemetry);
            let checkpoints = Arc::clone(checkpoints);
            move || {
                worker_main(
                    index,
                    generation,
                    wcfg,
                    log,
                    shared,
                    telemetry,
                    checkpoints,
                    boot,
                    rx,
                    backlog,
                )
            }
        })
        .expect("spawn pool worker thread");
    WorkerHandle {
        generation,
        tx,
        join,
        shared,
    }
}

impl Pool {
    /// Respawn every worker whose thread has exited (panic or poison).
    /// The replacement bootstraps from the newest checkpoint (or offset 0
    /// without one) and replays the log tail before serving; respawns are
    /// counted in [`crate::PoolStats::respawns`]. Returns how many workers
    /// were respawned by this call.
    pub(crate) fn supervise(&mut self) -> usize {
        let mut respawned = 0;
        for i in 0..self.workers.len() {
            if self.workers[i].join.is_finished() {
                let generation = self.workers[i].generation + 1;
                let fresh = spawn_worker(
                    i,
                    generation,
                    &self.cfg,
                    &self.log,
                    &self.telemetry,
                    &self.checkpoints,
                );
                let old = std::mem::replace(&mut self.workers[i], fresh);
                // Reap the dead thread; a panic here is already accounted
                // for (that's why we are respawning).
                let _ = old.join.join();
                respawned += 1;
            }
        }
        self.respawns += respawned as u64;
        respawned
    }
}

//! `polyview-pool` — the concurrent serving layer: a replicated engine
//! pool (DESIGN.md §10).
//!
//! # Replication, not sharing
//!
//! The evaluator's value graphs are `Rc`-shared ([`polyview::Value`] holds
//! `Rc<RecordVal>`, closures capture environments by `Rc`, sets share
//! spines), so an [`polyview::Engine`] is deliberately **not `Send`** —
//! its values must stay confined to the thread that created them, or the
//! non-atomic reference counts race. Instead of wrapping the evaluator in
//! locks (and giving up everything single-threaded evaluation buys), the
//! pool runs **N worker threads, each owning a full replica** of the
//! engine, and keeps the replicas in lock-step with an append-only
//! **declaration log** ([`DeclLog`]):
//!
//! * **writes** (top-level declarations, `insert`/`delete`/`update`, and
//!   any statement mentioning a name the pool's [`polyview::EffectSet`]
//!   knows is effectful — e.g. a call to a previously declared
//!   `fun f x = insert(C, x)`; see `classify`'s module docs for why the
//!   name-aware set, not bare syntax, is the single source of truth) are
//!   sequenced through the log and replayed deterministically on every
//!   replica, so each worker's top-level environments, prepared-statement
//!   cache, and `env_epoch` evolve identically;
//! * **reads** (queries, expression evaluation) have no effect any later
//!   statement can observe, so they fan out to any replica — each request
//!   carries the log length observed at submit time, and the serving
//!   replica catches up to at least that offset first, which gives
//!   *read-your-writes* to every session on every worker.
//!
//! Requests travel over **bounded** `std::sync::mpsc` queues: when a
//! worker's queue is full the submit returns [`Submit::Full`] instead of
//! growing without bound — callers see backpressure, not latency collapse.
//! Session affinity (hash of the session id → worker,
//! [`Pool::worker_for`]) keeps a REPL-style session on one replica, so its
//! statement-cache locality survives and its own writes are visible with
//! no cross-replica wait.
//!
//! Workers are supervised: a panicked worker's thread is detected and
//! respawned, and the replacement converges with its peers before it
//! serves anything ([`Pool::stats`] counts respawns). With
//! [`PoolConfig::checkpoint_every`] set, replicas periodically publish an
//! engine **checkpoint** ([`polyview::Engine::snapshot`]), so a respawn
//! restores the newest checkpoint and replays only the log *tail* above
//! it — bounding recovery by the checkpoint interval instead of the full
//! write history — and the router **compacts** the log below the
//! checkpoint (offsets stay absolute; [`TruncatedRead`] is loud). With
//! [`PoolConfig::snapshot_dir`] also set, the newest checkpoint is
//! persisted so a *restarted process* resumes from it (DESIGN.md §17).
//! The whole crate is std-only — no external dependencies enter the
//! tier-1 build graph.
//!
//! ```
//! use polyview_pool::{Pool, PoolConfig};
//!
//! let mut pool = Pool::new(PoolConfig::default().workers(2));
//! let session = 7;
//! pool.run(session, "class Staff = class {} end;").unwrap();
//! pool.run(session, "insert(Staff, IDView([Name = \"Ada\"]))").unwrap();
//! let names = pool
//!     .run(session, "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)")
//!     .unwrap();
//! assert_eq!(names, "{\"Ada\"}");
//! pool.shutdown();
//! ```

mod checkpoint;
mod health;
mod log;
mod router;
mod stats;
mod supervisor;
mod telemetry;
mod worker;

pub use crate::log::{DeclLog, TruncatedRead};
pub use health::{Health, HealthReport, HealthThresholds, WindowConfig, WorkerRow};
pub use polyview::obs::{
    CollectingEventSink, EventRecord, EventSink, JsonLinesEventSink, NullEventSink, SharedClock,
    SharedManualClock, SharedWallClock,
};
pub use polyview::StmtClass;
pub use router::{BatchTicket, Pool, Submit, Ticket, WorkerGate};
pub use stats::{PoolStats, WorkerStats};
pub use telemetry::SlowRequest;
pub use worker::WorkerReport;

use std::sync::Arc;

/// Construction-time knobs for a [`Pool`].
#[derive(Clone)]
pub struct PoolConfig {
    /// Number of engine replicas (worker threads). Each owns a complete
    /// [`polyview::Engine`]; memory scales linearly.
    pub workers: usize,
    /// Bound of each worker's request queue. A full queue reports
    /// [`Submit::Full`] at submit time (backpressure) rather than queueing
    /// without limit.
    pub queue_capacity: usize,
    /// Stack size of each worker thread. The tree-walking evaluator
    /// recurses with the interpreted program (see
    /// [`polyview::engine::with_stack_size`]), so workers must not inherit
    /// the small default stack of spawned threads; deep translations and
    /// non-tail `fix` loops need room.
    pub stack_bytes: usize,
    /// Per-replica evaluation fuel ([`polyview::Engine::with_fuel`]);
    /// `None` is unlimited. Fuel exhaustion is deterministic, so replicas
    /// agree on which statements die. Like the engine's, this is a
    /// *total* budget per replica, not per statement — an exhausted
    /// replica stays exhausted (size it well below what `stack_bytes`
    /// can absorb, since fuel must run out before the stack does).
    pub fuel: Option<u64>,
    /// Load the standard prelude into every replica at spawn (before any
    /// log replay; all replicas do it, so they stay in lock-step).
    pub load_prelude: bool,
    /// Master switch for request telemetry (trace events, latency
    /// histograms, slow log). Default **off**: the disabled path is a
    /// near-no-op — one branch per submit, no clock reads, no sink calls.
    /// Flipped on automatically by [`PoolConfig::event_sink`] and
    /// [`PoolConfig::slow_threshold_ns`].
    pub telemetry_enabled: bool,
    /// Where trace events go when telemetry is enabled. Default:
    /// [`NullEventSink`] (histograms and the slow log still fill — the
    /// sink only carries the per-event records).
    pub event_sink: Arc<dyn EventSink>,
    /// The shared time source for every telemetry timestamp (router,
    /// workers, and — bridged — the engines' own phase spans). Default:
    /// [`SharedWallClock`]; inject a [`SharedManualClock`] for
    /// deterministic timelines in tests.
    pub telemetry_clock: Arc<dyn SharedClock>,
    /// End-to-end latency at or above which a request is recorded in the
    /// bounded slow-request ring ([`Pool::slow_requests`]). `None`
    /// (default): no slow log.
    pub slow_threshold_ns: Option<u64>,
    /// Capacity of the slow-request ring (oldest entries evicted).
    pub slow_log_capacity: usize,
    /// Profile every Nth served request per worker (the first served
    /// request always profiles, then every Nth after it). Sampled
    /// profiles merge into one per-worker attribution profile, surfaced
    /// in [`PoolStats`]; when the slow log is on, a slow request that was
    /// sampled carries its own profile in its [`SlowRequest`] entry.
    /// `None` (default): never profile — workers pay one flag check per
    /// request and their engines none at all.
    pub profile_sample_every: Option<u64>,
    /// Thresholds the health verdict ([`Pool::health`]) folds worker
    /// state against. The defaults are permissive (load balancers must
    /// not flap); tighten them per deployment.
    pub health: HealthThresholds,
    /// Windowed-stats configuration: `Some` keeps a bounded ring of
    /// registry snapshots ([`Pool::tick_window`]) so windowed rates and
    /// quantiles are computable ([`Pool::window`]). `None` (default):
    /// windowing off — ticking is a single branch with zero clock reads.
    pub stats_window: Option<WindowConfig>,
    /// Publish an engine checkpoint every N applied writes per replica
    /// (the replicas race; only the newest is kept). Bounds what a
    /// respawn replays — at most N−1 entries plus whatever was sequenced
    /// since the last checkpoint landed — and arms log compaction.
    /// `None` (default): never checkpoint, never truncate — respawns
    /// replay the full history (the pre-checkpoint behavior).
    pub checkpoint_every: Option<u64>,
    /// Directory the newest checkpoint is persisted to (atomic
    /// write-then-rename; older files pruned). On construction the pool
    /// restores the newest valid checkpoint found there, making state
    /// survive process restarts at checkpoint granularity — writes after
    /// the last persisted checkpoint are lost. `None` (default): memory
    /// only. Only useful together with [`PoolConfig::checkpoint_every`].
    pub snapshot_dir: Option<std::path::PathBuf>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            queue_capacity: 64,
            stack_bytes: 256 * 1024 * 1024,
            fuel: None,
            load_prelude: false,
            telemetry_enabled: false,
            event_sink: Arc::new(NullEventSink),
            telemetry_clock: Arc::new(SharedWallClock::new()),
            slow_threshold_ns: None,
            slow_log_capacity: 32,
            profile_sample_every: None,
            health: HealthThresholds::default(),
            stats_window: None,
            checkpoint_every: None,
            snapshot_dir: None,
        }
    }
}

impl std::fmt::Debug for PoolConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The sink and clock are `dyn` trait objects without `Debug`;
        // everything else prints.
        f.debug_struct("PoolConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("stack_bytes", &self.stack_bytes)
            .field("fuel", &self.fuel)
            .field("load_prelude", &self.load_prelude)
            .field("telemetry_enabled", &self.telemetry_enabled)
            .field("slow_threshold_ns", &self.slow_threshold_ns)
            .field("slow_log_capacity", &self.slow_log_capacity)
            .field("profile_sample_every", &self.profile_sample_every)
            .field("health", &self.health)
            .field("stats_window", &self.stats_window)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("snapshot_dir", &self.snapshot_dir)
            .finish_non_exhaustive()
    }
}

impl PoolConfig {
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    pub fn stack_bytes(mut self, n: usize) -> Self {
        self.stack_bytes = n;
        self
    }

    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    pub fn load_prelude(mut self, yes: bool) -> Self {
        self.load_prelude = yes;
        self
    }

    /// Explicitly enable or disable request telemetry (the sink and
    /// threshold builders below enable it implicitly).
    pub fn telemetry_enabled(mut self, yes: bool) -> Self {
        self.telemetry_enabled = yes;
        self
    }

    /// Install an event sink **and enable telemetry**.
    pub fn event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.event_sink = sink;
        self.telemetry_enabled = true;
        self
    }

    /// Replace the telemetry time source. Does *not* enable telemetry by
    /// itself — tests inject a [`SharedManualClock`] precisely to assert
    /// the disabled path never reads it.
    pub fn telemetry_clock(mut self, clock: Arc<dyn SharedClock>) -> Self {
        self.telemetry_clock = clock;
        self
    }

    /// Record requests at or above `ns` end-to-end in the slow log, **and
    /// enable telemetry**.
    pub fn slow_threshold_ns(mut self, ns: u64) -> Self {
        self.slow_threshold_ns = Some(ns);
        self.telemetry_enabled = true;
        self
    }

    pub fn slow_log_capacity(mut self, n: usize) -> Self {
        self.slow_log_capacity = n;
        self
    }

    /// Profile every `n`th served request per worker (`n` is clamped to at
    /// least 1). Independent of telemetry: sampling fills the per-worker
    /// profile in [`PoolStats`] either way; the slow-log attachment
    /// additionally needs [`PoolConfig::slow_threshold_ns`].
    pub fn profile_sample_every(mut self, n: u64) -> Self {
        self.profile_sample_every = Some(n.max(1));
        self
    }

    /// Replace the health thresholds ([`Pool::health`] folds against
    /// them).
    pub fn health_thresholds(mut self, t: HealthThresholds) -> Self {
        self.health = t;
        self
    }

    /// Enable windowed stats: keep a ring of registry snapshots so
    /// [`Pool::window`] can answer rates and windowed quantiles. Does
    /// *not* enable telemetry — windowing over the pool's own counters
    /// works either way (the latency histograms only fill when telemetry
    /// is also on).
    pub fn stats_window(mut self, w: WindowConfig) -> Self {
        self.stats_window = Some(w);
        self
    }

    /// Checkpoint every `n` applied writes per replica (`n` clamped to at
    /// least 1), bounding respawn replay and arming log compaction.
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = Some(n.max(1));
        self
    }

    /// Persist the newest checkpoint to `dir` and restore from it at
    /// construction (see the field docs for the durability contract).
    pub fn snapshot_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }
}

/// Errors crossing the pool boundary.
///
/// Worker replies cross threads, and [`polyview::Error`] is not `Send`
/// (type errors carry `Rc`-shared type structure), so engine errors are
/// rendered on the worker and carried as their display strings, tagged
/// with the original kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// The statement failed to parse (rendered [`polyview::Error::Parse`]).
    Parse(String),
    /// The statement failed to type-check (rendered
    /// [`polyview::Error::Type`]).
    Type(String),
    /// The statement failed at runtime (rendered
    /// [`polyview::Error::Runtime`]).
    Runtime(String),
    /// Rendered [`polyview::Error::StalePrepared`].
    StalePrepared,
    /// Rendered [`polyview::Error::Internal`], or a pool invariant
    /// violation.
    Internal(String),
    /// The statement's [`StmtClass`] does not match the submit entry point
    /// ([`Pool::submit_read`] given a write, or [`Pool::submit_write`]
    /// given a read). Use [`Pool::submit`] to auto-route.
    Misrouted { expected: StmtClass, got: StmtClass },
    /// The serving worker died before replying. **Whether to resubmit
    /// depends on what was lost:**
    ///
    /// * `sequenced: None` — a read (or control request). It had no
    ///   effect; resubmit freely.
    /// * `sequenced: Some(offset)` — a **write**. It was already pushed
    ///   into the declaration log at `offset` before the worker died, so
    ///   every replica — including the dead worker's respawn, which
    ///   replays from offset 0 — **will apply it**. Only its outcome
    ///   string was lost. Resubmitting would sequence it a *second* time
    ///   and double-apply it (e.g. a duplicate `insert`). To observe the
    ///   outcome, re-run an equivalent read after a
    ///   [`Pool::barrier`].
    WorkerLost {
        /// The log offset the lost request was sequenced at, if it was a
        /// write. `None` for reads and control requests.
        sequenced: Option<u64>,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Parse(m)
            | PoolError::Type(m)
            | PoolError::Runtime(m)
            | PoolError::Internal(m) => write!(f, "{m}"),
            PoolError::StalePrepared => write!(f, "stale prepared statement"),
            PoolError::Misrouted { expected, got } => write!(
                f,
                "misrouted statement: submitted as a {expected} but classified as a {got}"
            ),
            PoolError::WorkerLost { sequenced: None } => {
                write!(
                    f,
                    "pool worker died before replying; the request had no effect and is safe to resubmit"
                )
            }
            PoolError::WorkerLost {
                sequenced: Some(offset),
            } => {
                write!(
                    f,
                    "pool worker died before replying, but the write was already sequenced at log \
                     offset {offset} and will be applied by every replica — do not resubmit it"
                )
            }
        }
    }
}

impl std::error::Error for PoolError {}

impl From<polyview::Error> for PoolError {
    fn from(e: polyview::Error) -> Self {
        let rendered = e.to_string();
        match e {
            polyview::Error::Parse(_) => PoolError::Parse(rendered),
            polyview::Error::Type(_) => PoolError::Type(rendered),
            polyview::Error::Runtime(_) => PoolError::Runtime(rendered),
            polyview::Error::StalePrepared => PoolError::StalePrepared,
            polyview::Error::Snapshot(_) | polyview::Error::Internal(_) => {
                PoolError::Internal(rendered)
            }
        }
    }
}

impl From<polyview::parser::ParseError> for PoolError {
    fn from(e: polyview::parser::ParseError) -> Self {
        PoolError::from(polyview::Error::from(e))
    }
}

impl PoolError {
    pub fn is_parse(&self) -> bool {
        matches!(self, PoolError::Parse(_))
    }
    pub fn is_type(&self) -> bool {
        matches!(self, PoolError::Type(_))
    }
    pub fn is_runtime(&self) -> bool {
        matches!(self, PoolError::Runtime(_))
    }
    pub fn is_misrouted(&self) -> bool {
        matches!(self, PoolError::Misrouted { .. })
    }
    pub fn is_worker_lost(&self) -> bool {
        matches!(self, PoolError::WorkerLost { .. })
    }
}

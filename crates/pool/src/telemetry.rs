//! End-to-end request telemetry: trace-id minting, lifecycle events,
//! latency histograms, and the slow-request log.
//!
//! One [`Telemetry`] instance is shared (`Arc`) between the router and
//! every worker — it survives respawns, so a replacement replica keeps
//! appending to the same histograms and event stream. A request's life is
//! stamped as [`polyview::obs::EventRecord`]s all carrying the same
//! `trace_id`:
//!
//! ```text
//! pool.submitted {session}          router   start = submit clock read
//! pool.classified {class}           router   0 = read, 1 = write
//! pool.sequenced {offset}           router   writes only
//! pool.enqueued {worker}            router   (pool.rejected_full on backpressure)
//! pool.dequeued {worker, generation} worker  dur = queue wait
//! pool.catchup {replayed}           worker   dur = log replay before serving
//! engine.parse / infer / translate / eval    bridged spans, parent = trace_id
//! pool.completed {worker, generation, ok}    dur = end-to-end
//! pool.worker_lost {worker}         caller   terminal event when the reply died
//! ```
//!
//! Overhead discipline: everything here is gated on the `enabled` flag
//! *before* any clock read, id mint, or sink call. With telemetry off
//! (the default), [`Telemetry::begin`] is one branch returning `None`,
//! and no request-path code touches the clock or the sink — the tier-1
//! tracing tests assert zero [`SharedManualClock`] reads on the disabled
//! path, and the `E9_trace_overhead` bench group keeps the claim honest
//! with numbers.
//!
//! Timestamps come from one [`SharedClock`] shared by the router, the
//! workers, *and* (via a worker-side clock bridge) the engine's own phase
//! spans, so every event of a trace lives on a single timeline — under
//! [`SharedManualClock`] the whole lifecycle is exact, which is what the
//! deterministic tier-1 timeline test pins.

use crate::PoolConfig;
use polyview::obs::{EventRecord, EventSink, SharedClock, SharedHistogram, SharedRegistry};
use polyview::StmtClass;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Encode a [`StmtClass`] as an event attribute value.
pub(crate) fn class_code(class: StmtClass) -> u64 {
    match class {
        StmtClass::Read => 0,
        StmtClass::Write => 1,
    }
}

/// The per-request trace context, minted at submit and carried with the
/// request across the queue. `Copy`, so it rides inside `Request` and the
/// ticket without allocation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RequestTrace {
    /// Monotonically increasing request id — the trace id (ids start at
    /// 1; trace id 0 marks untraced background work such as replay).
    pub id: u64,
    pub session: u64,
    pub class: StmtClass,
    /// Clock reading at [`Telemetry::begin`].
    pub submitted_ns: u64,
    /// Clock reading just before the enqueue attempt (stamped by
    /// [`Telemetry::stamp_enqueue`] *before* the send, so the worker's
    /// dequeue reading is always ≥ it).
    pub enqueued_ns: u64,
}

/// One entry of the bounded slow-request ring: everything needed to chase
/// a latency outlier without replaying the event stream.
#[derive(Clone, Debug)]
pub struct SlowRequest {
    /// The trace id — join key into the event stream.
    pub id: u64,
    pub session: u64,
    pub worker: usize,
    pub generation: u64,
    pub class: StmtClass,
    pub e2e_ns: u64,
    pub queue_wait_ns: u64,
    pub catchup_ns: u64,
    /// The statement source, truncated to [`SLOW_SRC_MAX`] characters.
    pub src: String,
    /// The request's own attribution profile, present when request
    /// sampling ([`crate::PoolConfig::profile_sample_every`]) happened to
    /// profile this request — the offending statement arrives already
    /// attributed, node by node.
    pub profile: Option<polyview::Profile>,
}

/// Character cap on the source text kept in a [`SlowRequest`].
pub(crate) const SLOW_SRC_MAX: usize = 120;

/// The pool's shared telemetry state: clock, sink, latency histograms,
/// and the slow-request ring. See the module docs for the event schema.
pub(crate) struct Telemetry {
    pub(crate) enabled: bool,
    pub(crate) clock: Arc<dyn SharedClock>,
    pub(crate) sink: Arc<dyn EventSink>,
    pub(crate) registry: SharedRegistry,
    pub(crate) queue_wait_ns: SharedHistogram,
    pub(crate) catchup_ns: SharedHistogram,
    pub(crate) e2e_read_ns: SharedHistogram,
    pub(crate) e2e_write_ns: SharedHistogram,
    slow_threshold_ns: Option<u64>,
    slow_capacity: usize,
    slow: Mutex<VecDeque<SlowRequest>>,
    next_id: AtomicU64,
}

impl Telemetry {
    pub(crate) fn new(cfg: &PoolConfig) -> Telemetry {
        let registry = SharedRegistry::new();
        Telemetry {
            enabled: cfg.telemetry_enabled,
            clock: Arc::clone(&cfg.telemetry_clock),
            sink: Arc::clone(&cfg.event_sink),
            queue_wait_ns: registry.histogram("pool.queue_wait_ns"),
            catchup_ns: registry.histogram("pool.catchup_ns"),
            e2e_read_ns: registry.histogram("pool.e2e_read_ns"),
            e2e_write_ns: registry.histogram("pool.e2e_write_ns"),
            registry,
            slow_threshold_ns: cfg.slow_threshold_ns,
            slow_capacity: cfg.slow_log_capacity,
            slow: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(0),
        }
    }

    fn event(
        &self,
        name: &str,
        trace_id: u64,
        start_ns: u64,
        dur_ns: u64,
        attrs: Vec<(String, u64)>,
    ) {
        self.sink.emit(&EventRecord {
            name: name.to_string(),
            trace_id,
            parent: None,
            start_ns,
            dur_ns,
            attrs,
        });
    }

    /// Mint a trace for an accepted submission — or `None` (one branch,
    /// no clock read, no id mint) when telemetry is disabled. Emits
    /// `pool.submitted` and `pool.classified`.
    pub(crate) fn begin(&self, session: u64, class: StmtClass) -> Option<RequestTrace> {
        if !self.enabled {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let submitted_ns = self.clock.now_ns();
        self.event(
            "pool.submitted",
            id,
            submitted_ns,
            0,
            vec![("session".to_string(), session)],
        );
        self.event(
            "pool.classified",
            id,
            submitted_ns,
            0,
            vec![("class".to_string(), class_code(class))],
        );
        Some(RequestTrace {
            id,
            session,
            class,
            submitted_ns,
            enqueued_ns: submitted_ns,
        })
    }

    /// Stamp the enqueue-attempt time. Called *before* the send so the
    /// worker's dequeue reading is ordered after it (queue wait is never
    /// negative); the matching event is emitted after the send resolves
    /// ([`Telemetry::note_enqueued`] / [`Telemetry::note_rejected`]).
    pub(crate) fn stamp_enqueue(&self, trace: &mut RequestTrace) {
        trace.enqueued_ns = self.clock.now_ns();
    }

    /// The send was accepted: emit `pool.sequenced` (writes) and
    /// `pool.enqueued`.
    pub(crate) fn note_enqueued(
        &self,
        trace: &RequestTrace,
        worker: usize,
        sequenced: Option<u64>,
    ) {
        if let Some(offset) = sequenced {
            self.event(
                "pool.sequenced",
                trace.id,
                trace.enqueued_ns,
                0,
                vec![("offset".to_string(), offset)],
            );
        }
        self.event(
            "pool.enqueued",
            trace.id,
            trace.enqueued_ns,
            0,
            vec![("worker".to_string(), worker as u64)],
        );
    }

    /// The target queue was full: nothing was enqueued (or sequenced).
    pub(crate) fn note_rejected(&self, trace: &RequestTrace, worker: usize) {
        self.event(
            "pool.rejected_full",
            trace.id,
            trace.enqueued_ns,
            0,
            vec![("worker".to_string(), worker as u64)],
        );
    }

    /// Worker-side: the request left the queue. Reads the clock, emits
    /// `pool.dequeued` spanning the queue wait, feeds the queue-wait
    /// histogram, and returns the dequeue reading.
    pub(crate) fn note_dequeued(
        &self,
        trace: &RequestTrace,
        worker: usize,
        generation: u64,
    ) -> u64 {
        let dequeued_ns = self.clock.now_ns();
        let queue_wait = dequeued_ns.saturating_sub(trace.enqueued_ns);
        self.queue_wait_ns.observe(queue_wait);
        self.event(
            "pool.dequeued",
            trace.id,
            trace.enqueued_ns,
            queue_wait,
            vec![
                ("worker".to_string(), worker as u64),
                ("generation".to_string(), generation),
            ],
        );
        dequeued_ns
    }

    /// Worker-side: pre-serve log replay finished. Reads the clock, emits
    /// `pool.catchup` spanning the replay, feeds the catch-up histogram,
    /// and returns the catch-up duration.
    pub(crate) fn note_catchup(
        &self,
        trace: &RequestTrace,
        dequeued_ns: u64,
        replayed: u64,
    ) -> u64 {
        let done_ns = self.clock.now_ns();
        let catchup = done_ns.saturating_sub(dequeued_ns);
        self.catchup_ns.observe(catchup);
        self.event(
            "pool.catchup",
            trace.id,
            dequeued_ns,
            catchup,
            vec![("replayed".to_string(), replayed)],
        );
        catchup
    }

    /// Worker-side terminal: the request was served. Reads the clock,
    /// emits `pool.completed` spanning the whole request, feeds the
    /// end-to-end histogram for the request's class, and records the
    /// request in the slow log if it crossed the threshold.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn note_completed(
        &self,
        trace: &RequestTrace,
        worker: usize,
        generation: u64,
        ok: bool,
        queue_wait_ns: u64,
        catchup_ns: u64,
        src: &str,
        profile: Option<polyview::Profile>,
    ) {
        let done_ns = self.clock.now_ns();
        let e2e = done_ns.saturating_sub(trace.submitted_ns);
        self.observe_e2e(trace.class, e2e);
        self.event(
            "pool.completed",
            trace.id,
            trace.submitted_ns,
            e2e,
            vec![
                ("worker".to_string(), worker as u64),
                ("generation".to_string(), generation),
                ("ok".to_string(), u64::from(ok)),
            ],
        );
        if self.slow_threshold_ns.is_some_and(|t| e2e >= t) {
            let mut slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if slow.len() >= self.slow_capacity.max(1) {
                slow.pop_front();
            }
            slow.push_back(SlowRequest {
                id: trace.id,
                session: trace.session,
                worker,
                generation,
                class: trace.class,
                e2e_ns: e2e,
                queue_wait_ns,
                catchup_ns,
                src: src.chars().take(SLOW_SRC_MAX).collect(),
                profile,
            });
        }
    }

    /// Caller-side terminal: the serving worker died before replying.
    /// Emits `pool.worker_lost` spanning the whole request and still
    /// feeds the end-to-end histogram, so e2e counts match accepted
    /// submissions even across a crash.
    pub(crate) fn note_worker_lost(&self, trace: &RequestTrace, worker: usize) {
        let done_ns = self.clock.now_ns();
        let e2e = done_ns.saturating_sub(trace.submitted_ns);
        self.observe_e2e(trace.class, e2e);
        self.event(
            "pool.worker_lost",
            trace.id,
            trace.submitted_ns,
            e2e,
            vec![("worker".to_string(), worker as u64)],
        );
    }

    fn observe_e2e(&self, class: StmtClass, e2e_ns: u64) {
        match class {
            StmtClass::Read => self.e2e_read_ns.observe(e2e_ns),
            StmtClass::Write => self.e2e_write_ns.observe(e2e_ns),
        }
    }

    /// The slow-request ring, oldest first.
    pub(crate) fn slow_requests(&self) -> Vec<SlowRequest> {
        self.slow
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

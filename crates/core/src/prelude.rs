//! A standard prelude of derived operations, written in the surface
//! language itself (everything here is definable from `hom`, `union` and
//! the object algebra — the paper's point about the core's completeness).
//!
//! Loaded on demand with [`crate::Engine::load_prelude`]; kept opt-in so
//! embedders control their global namespace.

/// The prelude source. Every definition is polymorphic where the calculus
/// allows.
pub const PRELUDE: &str = r#"
-- cardinality of a set
fun count s = hom(s, fn x => 1, fn a => fn b => a + b, 0);

-- sum of a set of integers
fun sum s = hom(s, fn x => x, fn a => fn b => a + b, 0);

-- largest / smallest element of a set of integers (0 when empty)
fun maximum s = hom(s, fn x => x, fn a => fn b => max a b, 0);
fun minimum s = hom(s, fn x => x, fn a => fn b => min a b, 0);

-- does any / every element satisfy p?
fun exists p s = hom(s, p, fn a => fn b => if a then true else b, false);
fun forall p s = hom(s, p, fn a => fn b => if a then b else false, true);

-- set difference and subset test (by the element equality of Section 3.1)
fun diff s t = filter(fn x => not (member(x, t)), s);
fun subset s t = forall (fn x => member(x, t)) s;

-- flatten a set of sets
fun flatten ss = hom(ss, fn s => s, fn a => fn b => union(a, b), {});

-- materialize every object in a set (query with the identity)
fun materialize s = map(fn o => query(fn x => x, o), s);

-- the objects of a class, and its cardinality
fun extent c = cquery(fn s => s, c);
fun csize c = cquery(fn s => count s, c);
"#;

#[cfg(test)]
mod tests {
    use crate::Engine;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.load_prelude().expect("prelude loads");
        e
    }

    #[test]
    fn prelude_loads_cleanly_twice() {
        let mut e = engine();
        e.load_prelude().expect("idempotent");
    }

    #[test]
    fn count_sum_max_min() {
        let mut e = engine();
        assert_eq!(e.eval_to_string("count {1, 2, 3}").expect("runs"), "3");
        assert_eq!(e.eval_to_string("count {}").expect("runs"), "0");
        assert_eq!(e.eval_to_string("sum {1, 2, 3}").expect("runs"), "6");
        assert_eq!(e.eval_to_string("maximum {5, 2, 9}").expect("runs"), "9");
        assert_eq!(e.eval_to_string("minimum {5, 2, 9}").expect("runs"), "0");
        assert_eq!(
            e.eval_to_string("hom({5, 2, 9}, fn x => x, fn a => fn b => min a b, 99)")
                .expect("runs"),
            "2"
        );
    }

    #[test]
    fn count_is_polymorphic() {
        let mut e = engine();
        assert_eq!(e.eval_to_string("count {\"a\", \"b\"}").expect("runs"), "2");
        let s = e.scheme_of("count").expect("bound").to_string();
        assert!(s.starts_with("∀t1::U. {t1} -> int"), "got {s}");
    }

    #[test]
    fn exists_and_forall() {
        let mut e = engine();
        assert_eq!(
            e.eval_to_string("exists (fn x => x > 2) {1, 2, 3}")
                .expect("runs"),
            "true"
        );
        assert_eq!(
            e.eval_to_string("exists (fn x => x > 9) {1, 2, 3}")
                .expect("runs"),
            "false"
        );
        assert_eq!(
            e.eval_to_string("forall (fn x => x > 0) {1, 2, 3}")
                .expect("runs"),
            "true"
        );
        assert_eq!(
            e.eval_to_string("forall (fn x => x > 1) {1, 2, 3}")
                .expect("runs"),
            "false"
        );
        // Vacuous truth on the empty set.
        assert_eq!(
            e.eval_to_string("forall (fn x => x > 1) {}").expect("runs"),
            "true"
        );
    }

    #[test]
    fn diff_subset_flatten() {
        let mut e = engine();
        assert_eq!(
            e.eval_to_string("diff {1, 2, 3} {2}").expect("runs"),
            "{1, 3}"
        );
        assert_eq!(
            e.eval_to_string("subset {1, 2} {1, 2, 3}").expect("runs"),
            "true"
        );
        assert_eq!(
            e.eval_to_string("subset {1, 9} {1, 2, 3}").expect("runs"),
            "false"
        );
        assert_eq!(
            e.eval_to_string("flatten {{1, 2}, {2, 3}}").expect("runs"),
            "{1, 2, 3}"
        );
    }

    #[test]
    fn extent_and_csize_on_classes() {
        let mut e = engine();
        e.exec("class Staff = class {IDView([Name = \"A\"]), IDView([Name = \"B\"])} end;")
            .expect("defines");
        assert_eq!(e.eval_to_string("csize Staff").expect("runs"), "2");
        assert_eq!(e.eval_to_string("count (extent Staff)").expect("runs"), "2");
    }

    #[test]
    fn materialize_applies_views() {
        let mut e = engine();
        e.exec("val s = {IDView([Name = \"A\"]) as fn x => [N = x.Name]};")
            .expect("defines");
        assert_eq!(
            e.eval_to_string("materialize s").expect("runs"),
            "{[N = \"A\"]}"
        );
    }
}

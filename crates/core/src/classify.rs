//! Read/write classification of statements — the single source of truth
//! the serving layer (`crates/pool`) routes on.
//!
//! The calculus is purely functional at the value level: objects are
//! raw-object/view pairs (Fig. 3), and a query never changes what any later
//! statement observes. Persistent state changes come from exactly two
//! places:
//!
//! * **declarations** — `val`/`fun`/`class` extend the top-level type and
//!   value environments (and bump the engine's declaration epoch), and
//! * **store effects** — `insert`/`delete` change a class's own extent, and
//!   `update` assigns to a mutable record field.
//!
//! Everything else is a [`StmtClass::Read`]: it may allocate fresh
//! identities in the machine's store while it runs (records have L-value
//! identity, so evaluation is not *pure* in the allocation sense), but
//! nothing it creates is reachable from any later statement. That is the
//! property a replicated pool needs — reads can be served by any replica
//! without coordination, while writes must be sequenced through the
//! declaration log and replayed on every replica in the same order.
//!
//! [`crate::Database`]'s facade methods follow the same split (`query` is a
//! read, `insert`/`delete`/`exec` are writes), and
//! [`crate::Prepared::class`] classifies a compiled statement without
//! reparsing.
//!
//! # Syntactic classification alone is NOT sound for routing
//!
//! The free functions below ([`classify_expr`] / [`classify_decl`] /
//! [`classify_program`]) look only at the statement's own AST. That misses
//! effects reached *through a name*: after `fun f x = insert(C, x);` (a
//! write — every replica binds `f`), the bare call `f(o)` contains no
//! `Insert` node and classifies as `Read`. Routing on that alone would run
//! the insert on a single replica, bypassing the declaration log and
//! silently diverging the pool. Anything that routes on classification
//! must therefore use an [`EffectSet`]: observe every sequenced write
//! ([`EffectSet::observe_program`]) so names whose values can perform
//! effects when used are known, and classify through it
//! ([`EffectSet::classify_program`]), which additionally marks any
//! statement mentioning such a name as a write. The pool does exactly this
//! (DESIGN.md §10).
//!
//! ## Residual escape: effectful closures reached through applications
//!
//! `EffectSet` tracks effects per *top-level name*, and constructor
//! positions propagate like application arguments: a record/tuple/set
//! literal mentioning an effectful name (`[f = insert_fn]`, `{insert_fn}`)
//! carries the effect, because the name is free in the literal. Storing
//! such a value into previously-existing data also taints the *target* —
//! after `update(box, F, fn x => insert(C, x))` the name `box` is
//! effectful (the closure is reachable through a field read), and after
//! `insert(C, obj)` with an effect-carrying `obj` the class `C` is (a
//! query can hand the smuggled closure out). The storing statement is a
//! write syntactically, so the observing router always sees it.
//!
//! One notch of that escape is closed at *application sites*: observing a
//! direct application of a known-effectful name — or of a locally-bound
//! alias of one (`let g = put in g(box) end`) — taints the free names of
//! its arguments, because the called function may store into what it was
//! handed. After `fun put b = update(b, F, insert_fn); put(box)` the name
//! `box` is therefore effectful and a later `(box.F)(o)` classifies as a
//! write.
//!
//! What remains out of reach without a type-and-effect system
//! ([`crate::types`] does none): an effectful closure reached through
//! *data* rather than through a name or a direct application — e.g.
//! `map(put, boxes)` passes `put` higher-order, so no argument of the
//! statement is syntactically applied to it, and the elements of `boxes`
//! are not marked. Callers that construct such values must force
//! sequencing at the call site by wrapping it in a declaration
//! (`val it = (box.F)(o);` — declarations always classify as writes).

use polyview_parser::{parse_program, Decl, ParseError};
use polyview_syntax::visit::{children, class_children, free_vars, walk};
use polyview_syntax::{Expr, Name};
use std::collections::{BTreeMap, BTreeSet};

/// Whether a statement changes state any later statement can observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StmtClass {
    /// No persistent effect: safe to serve on any replica of an engine kept
    /// in declaration-log lock-step.
    Read,
    /// Declares a top-level name or mutates the store: must be sequenced
    /// and replayed on every replica.
    Write,
}

impl StmtClass {
    pub fn is_read(self) -> bool {
        matches!(self, StmtClass::Read)
    }

    pub fn is_write(self) -> bool {
        matches!(self, StmtClass::Write)
    }
}

impl std::fmt::Display for StmtClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StmtClass::Read => write!(f, "read"),
            StmtClass::Write => write!(f, "write"),
        }
    }
}

/// Classify a bare expression: a write iff it contains an effectful node
/// (`insert`, `delete`, or `update`) anywhere, including under binders —
/// a lambda that *would* insert when applied is conservatively a write,
/// because evaluating the statement may apply it.
pub fn classify_expr(e: &Expr) -> StmtClass {
    let mut writes = false;
    walk(e, &mut |n| {
        if matches!(
            n,
            Expr::Insert(_, _)
                | Expr::Delete(_, _)
                | Expr::Update(_, _, _)
                | Expr::UpdateAt(_, _, _, _)
        ) {
            writes = true;
        }
    });
    if writes {
        StmtClass::Write
    } else {
        StmtClass::Read
    }
}

/// Classify a parsed declaration. `val`/`fun`/`class` always write (they
/// bind top-level names and bump the declaration epoch); a bare expression
/// writes iff [`classify_expr`] says so.
pub fn classify_decl(d: &Decl) -> StmtClass {
    match d {
        Decl::Val(_, _) | Decl::Fun(_) | Decl::Classes(_) => StmtClass::Write,
        Decl::Expr(e) => classify_expr(e),
    }
}

/// Classify a whole program (`;`-separated declarations): a write iff any
/// of its declarations writes. Parsing happens against no environment, so
/// classification needs no engine and can run on the submitting thread.
///
/// **Purely syntactic** — see the module docs: a call to a previously
/// declared effectful function escapes this. Routing layers must classify
/// through an [`EffectSet`] instead.
pub fn classify_program(src: &str) -> Result<StmtClass, ParseError> {
    let decls = parse_program(src)?;
    Ok(if decls.iter().any(|d| classify_decl(d).is_write()) {
        StmtClass::Write
    } else {
        StmtClass::Read
    })
}

/// Does `e` contain an effect node (`insert`/`delete`/`update`) anywhere,
/// including under binders?
fn has_effect_node(e: &Expr) -> bool {
    classify_expr(e).is_write()
}

/// Every `(target, payload)` pair of a store write inside `e`, in
/// syntactic order: `insert(target, payload)` and
/// `update(target, _, payload)`. These are the sites where a value can be
/// made reachable from previously-existing data.
fn store_sites<'a>(e: &'a Expr, out: &mut Vec<(&'a Expr, &'a Expr)>) {
    match e {
        Expr::Insert(target, payload) => out.push((target, payload)),
        Expr::Update(target, _, payload) => out.push((target, payload)),
        Expr::UpdateAt(target, _, _, payload) => out.push((target, payload)),
        _ => {}
    }
    for c in children(e) {
        store_sites(c, out);
    }
}

/// The set of top-level names whose values may perform store effects when
/// *used* — the environment-aware half of classification.
///
/// A routing layer feeds it every statement it sequences as a write
/// ([`EffectSet::observe_program`], in log order), and classifies incoming
/// statements with [`EffectSet::classify_program`]: a statement is a write
/// if it is syntactically a write ([`classify_decl`]) **or** mentions any
/// effectful name as a free variable. That closes the declared-function
/// escape (`fun f x = insert(C, x); … f(o)`), including aliases
/// (`val g = f;` marks `g`), higher-order mentions (`map(f, s)` — `f` is
/// free in the statement), and mutual recursion (fixpoint over each
/// `fun … and …` / `class … and …` group).
///
/// Marking is conservative in the safe direction: a statement that merely
/// *mentions* an effectful name without calling it, or that locally
/// shadows one, classifies as a write and pays one sequencing round-trip —
/// never the reverse. The residual escape (effectful closures reached
/// through data, not names) is documented in the module docs.
#[derive(Clone, Debug, Default)]
pub struct EffectSet {
    effectful: BTreeSet<Name>,
}

impl EffectSet {
    pub fn new() -> Self {
        EffectSet::default()
    }

    /// Names currently known effectful.
    pub fn len(&self) -> usize {
        self.effectful.len()
    }

    pub fn is_empty(&self) -> bool {
        self.effectful.is_empty()
    }

    pub fn is_effectful(&self, name: &str) -> bool {
        self.effectful.contains(name)
    }

    /// The names currently known effectful, in name order — the
    /// serializable face of the set. A checkpointing layer persists these
    /// alongside its engine snapshot so that classification survives a
    /// restart whose log prefix was truncated (the defining sources are
    /// gone, so the set cannot be rebuilt by observation).
    pub fn effectful_names(&self) -> impl Iterator<Item = &Name> + '_ {
        self.effectful.iter()
    }

    /// Re-mark a name as effectful (checkpoint restore). Safe in the
    /// conservative direction: a stale extra name only costs statements
    /// mentioning it a sequencing round-trip, never correctness.
    pub fn mark_effectful(&mut self, name: impl Into<Name>) {
        self.effectful.insert(name.into());
    }

    /// Does `e` reference (as a free variable) any name known effectful,
    /// or contain an effect node outright?
    fn expr_carries_effect(&self, e: &Expr) -> bool {
        has_effect_node(e) || free_vars(e).iter().any(|v| self.effectful.contains(v))
    }

    /// [`classify_expr`], plus: mentioning an effectful name is a write.
    pub fn classify_expr(&self, e: &Expr) -> StmtClass {
        if self.expr_carries_effect(e) {
            StmtClass::Write
        } else {
            StmtClass::Read
        }
    }

    /// [`classify_decl`], through the set.
    pub fn classify_decl(&self, d: &Decl) -> StmtClass {
        match d {
            Decl::Val(_, _) | Decl::Fun(_) | Decl::Classes(_) => StmtClass::Write,
            Decl::Expr(e) => self.classify_expr(e),
        }
    }

    /// [`classify_program`], through the set. This is the classification
    /// entry point routing layers must use.
    pub fn classify_program(&self, src: &str) -> Result<StmtClass, ParseError> {
        let decls = parse_program(src)?;
        Ok(if decls.iter().any(|d| self.classify_decl(d).is_write()) {
            StmtClass::Write
        } else {
            StmtClass::Read
        })
    }

    /// Mark the *targets* of store writes whose payload can carry an
    /// effect: after `update(box, F, fn x => insert(C, x))`, any statement
    /// mentioning `box` may reach the stored closure through a field read,
    /// so `box` itself becomes effectful (likewise `insert(C, obj)` with an
    /// effect-carrying `obj` taints `C` — querying `C` can hand the closure
    /// out). Only names free in the whole observed expression are tainted:
    /// a target that is locally bound (`fn b => update(b, …)`) names no
    /// top-level binding, and the binder case is already covered by the
    /// `val`/`fun` marking rules. Iterated to a fixpoint so a payload
    /// mentioning a target tainted earlier in the same statement converges.
    fn taint_store_targets(&mut self, e: &Expr) {
        let mut sites = Vec::new();
        store_sites(e, &mut sites);
        if sites.is_empty() {
            return;
        }
        let outer = free_vars(e);
        loop {
            let mut changed = false;
            for (target, payload) in &sites {
                if self.expr_carries_effect(payload) {
                    for n in free_vars(target) {
                        if outer.contains(&n) && self.effectful.insert(n) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Mark the arguments of *direct applications* of effectful names:
    /// after `fun put b = update(b, F, insert_fn);`, observing `put(box)`
    /// taints `box` — the call may store an effectful closure into what it
    /// was handed, making it reachable through a later field read. The
    /// callee is resolved through locally-bound aliases
    /// (`let g = put in g(box) end` taints `box` too) and respects local
    /// shadowing (`let put = fn x => x in put(box) end` taints nothing).
    /// Curried spines taint every argument (`put2 x box` marks both —
    /// conservative, never the reverse). `bound` carries names the
    /// enclosing declaration binds (fn parameters, group siblings), which
    /// shadow globals and are never themselves tainted.
    fn taint_app_args(&mut self, e: &Expr, bound: &BTreeSet<Name>) {
        let mut outer = free_vars(e);
        for b in bound {
            outer.remove(b);
        }
        if outer.is_empty() {
            return;
        }
        let locals: BTreeMap<Name, bool> = bound.iter().map(|n| (n.clone(), false)).collect();
        // Fixpoint: tainting an argument can make a later application's
        // callee (an alias of it) effectful.
        loop {
            let mut changed = false;
            self.app_taint_walk(e, &outer, &locals, &mut changed);
            if !changed {
                break;
            }
        }
    }

    /// Is `e` (as a callee or a `let` right-hand side) a name that
    /// resolves — through the local scope — to something effectful?
    fn resolves_effectful(&self, e: &Expr, locals: &BTreeMap<Name, bool>) -> bool {
        match e {
            Expr::Var(x) => locals
                .get(x)
                .copied()
                .unwrap_or_else(|| self.effectful.contains(x)),
            _ => false,
        }
    }

    fn app_taint_walk(
        &mut self,
        e: &Expr,
        outer: &BTreeSet<Name>,
        locals: &BTreeMap<Name, bool>,
        changed: &mut bool,
    ) {
        match e {
            Expr::App(_, _) => {
                // Walk the application spine to its head, collecting the
                // argument of every nesting level (curried calls).
                let mut head = e;
                let mut args = Vec::new();
                while let Expr::App(f, a) = head {
                    args.push(a.as_ref());
                    head = f.as_ref();
                }
                if self.resolves_effectful(head, locals) {
                    for arg in &args {
                        for n in free_vars(arg) {
                            if outer.contains(&n) && self.effectful.insert(n) {
                                *changed = true;
                            }
                        }
                    }
                }
                self.app_taint_walk(head, outer, locals, changed);
                for arg in args {
                    self.app_taint_walk(arg, outer, locals, changed);
                }
            }
            Expr::Lam(x, b) | Expr::Fix(x, b) => {
                let mut inner = locals.clone();
                inner.insert(x.clone(), false);
                self.app_taint_walk(b, outer, &inner, changed);
            }
            Expr::Let(x, rhs, body) => {
                self.app_taint_walk(rhs, outer, locals, changed);
                let alias = self.resolves_effectful(rhs, locals);
                let mut inner = locals.clone();
                inner.insert(x.clone(), alias);
                self.app_taint_walk(body, outer, &inner, changed);
            }
            Expr::LetClasses(binds, body) => {
                let mut inner = locals.clone();
                for (c, _) in binds {
                    inner.insert(c.clone(), false);
                }
                for (_, cd) in binds {
                    for c in class_children(cd) {
                        self.app_taint_walk(c, outer, &inner, changed);
                    }
                }
                self.app_taint_walk(body, outer, &inner, changed);
            }
            _ => {
                for c in children(e) {
                    self.app_taint_walk(c, outer, locals, changed);
                }
            }
        }
    }

    /// Record the names a sequenced write makes effectful. Call this for
    /// every write, in log order — later statements are classified against
    /// the accumulated set.
    pub fn observe_decl(&mut self, d: &Decl) {
        match d {
            // `val x = e;` — x is effectful if its value can carry an
            // effect: e contains an effect node (possibly under a binder,
            // i.e. x may be an effectful closure) or references an
            // effectful name (aliasing / partial application). Evaluating
            // e can also *store* an effectful closure into existing data;
            // those targets are tainted too.
            Decl::Val(x, e) => {
                if self.expr_carries_effect(e) {
                    self.effectful.insert(x.clone());
                }
                self.taint_store_targets(e);
                self.taint_app_args(e, &BTreeSet::new());
            }
            // `fun f … = e and g … = e';` — fixpoint over the group so
            // mutual recursion converges: f is effectful if its body has
            // an effect node or mentions an effectful name or an
            // effectful sibling. Parameters shadow outer names.
            Decl::Fun(binds) => {
                let mut marked: BTreeSet<Name> = BTreeSet::new();
                loop {
                    let mut changed = false;
                    for (f, params, body) in binds {
                        if marked.contains(f) {
                            continue;
                        }
                        let fv = free_vars(body);
                        let dirty = has_effect_node(body)
                            || fv.iter().any(|v| {
                                !params.contains(v)
                                    && (self.effectful.contains(v) || marked.contains(v))
                            });
                        if dirty {
                            marked.insert(f.clone());
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                self.effectful.extend(marked);
                // Application sites inside the bodies: `fun h x = put(box);`
                // taints `box` even though h itself is the marked name —
                // calling h later performs the store into box. Parameters
                // and group siblings shadow.
                for (_, params, body) in binds {
                    let mut bound: BTreeSet<Name> = params.iter().cloned().collect();
                    bound.extend(binds.iter().map(|(f, _, _)| f.clone()));
                    self.taint_app_args(body, &bound);
                }
            }
            // `class C = … and D = …;` — a class is effectful if any of
            // its constituent expressions (own extent, include sources,
            // viewing functions, predicates) carries an effect: querying
            // the class then runs that code. Same group fixpoint (a class
            // sourcing an effectful sibling is effectful too).
            Decl::Classes(binds) => {
                let mut marked: BTreeSet<Name> = BTreeSet::new();
                loop {
                    let mut changed = false;
                    for (c, cd) in binds {
                        if marked.contains(c) {
                            continue;
                        }
                        let dirty = class_children(cd).into_iter().any(|e| {
                            self.expr_carries_effect(e)
                                || free_vars(e).iter().any(|v| marked.contains(v))
                        });
                        if dirty {
                            marked.insert(c.clone());
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                self.effectful.extend(marked);
            }
            // A bare expression binds nothing, but it can *store* an
            // effectful closure into previously-existing data —
            // `update(box, F, insert_fn)` — making the closure reachable
            // from a name the statement never rebinds. Taint the store
            // targets so the later indirect call `(box.F)(o)` classifies
            // as a write. (The storing statement itself is always a write
            // syntactically, so it is observed here in log order.)
            Decl::Expr(e) => {
                self.taint_store_targets(e);
                self.taint_app_args(e, &BTreeSet::new());
            }
        }
    }

    /// [`EffectSet::observe_decl`] over a parsed program, in order —
    /// within one program, `fun f x = insert(C, x); val g = f;` marks both.
    pub fn observe_program(&mut self, src: &str) -> Result<(), ParseError> {
        for d in parse_program(src)? {
            self.observe_decl(&d);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_are_writes() {
        assert_eq!(classify_program("val x = 1;").unwrap(), StmtClass::Write);
        assert_eq!(classify_program("fun f x = x;").unwrap(), StmtClass::Write);
        assert_eq!(
            classify_program("class C = class {} end;").unwrap(),
            StmtClass::Write
        );
    }

    #[test]
    fn store_effects_are_writes() {
        assert_eq!(
            classify_program("insert(C, IDView([Name = \"x\"]))").unwrap(),
            StmtClass::Write
        );
        assert_eq!(classify_program("delete(C, o)").unwrap(), StmtClass::Write);
        assert_eq!(
            classify_program("update(r, Salary, 99)").unwrap(),
            StmtClass::Write
        );
    }

    #[test]
    fn queries_and_expressions_are_reads() {
        for src in [
            "1 + 2",
            "query(fn x => x.Name, o)",
            "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)",
            "let x = 3 in x * x end",
            "[Name = \"joe\"]", // allocates an identity, but unreachably
        ] {
            assert_eq!(classify_program(src).unwrap(), StmtClass::Read, "{src}");
        }
    }

    #[test]
    fn effect_under_a_binder_is_conservatively_a_write() {
        assert_eq!(
            classify_program("fn x => insert(C, x)").unwrap(),
            StmtClass::Write
        );
        assert_eq!(
            classify_program("if b then update(r, F, 1) else ()").unwrap(),
            StmtClass::Write
        );
    }

    #[test]
    fn program_writes_if_any_decl_writes() {
        assert_eq!(
            classify_program("1 + 1; val x = 2; 3 + 3;").unwrap(),
            StmtClass::Write
        );
    }

    #[test]
    fn parse_errors_surface() {
        assert!(classify_program("val = 3").is_err());
    }

    // ----- EffectSet: the declared-function escape and its closure -----

    #[test]
    fn call_of_declared_effectful_function_is_a_write() {
        let mut fx = EffectSet::new();
        // Purely syntactic classification misses this call…
        assert_eq!(classify_program("f(o)").unwrap(), StmtClass::Read);
        // …but after observing the declaration, the set catches it.
        fx.observe_program("fun f x = insert(C, x);").unwrap();
        assert!(fx.is_effectful("f"));
        assert_eq!(fx.classify_program("f(o)").unwrap(), StmtClass::Write);
        // Higher-order mention too: f is free in the statement.
        assert_eq!(fx.classify_program("map(f, s)").unwrap(), StmtClass::Write);
        // Unrelated reads stay reads.
        assert_eq!(fx.classify_program("1 + 2").unwrap(), StmtClass::Read);
        assert_eq!(fx.classify_program("g(o)").unwrap(), StmtClass::Read);
    }

    #[test]
    fn aliases_of_effectful_names_propagate() {
        let mut fx = EffectSet::new();
        fx.observe_program("fun f x = insert(C, x); val g = f;")
            .unwrap();
        assert!(fx.is_effectful("g"));
        assert_eq!(fx.classify_program("g(o)").unwrap(), StmtClass::Write);
        // An effectful closure bound by val is caught by the binder check.
        fx.observe_program("val h = fn x => delete(C, x);").unwrap();
        assert_eq!(fx.classify_program("h(o)").unwrap(), StmtClass::Write);
    }

    #[test]
    fn mutual_recursion_reaches_a_fixpoint() {
        let mut fx = EffectSet::new();
        // g is effectful only through f; declared in one group.
        fx.observe_program("fun f x = insert(C, x) and g y = f(y);")
            .unwrap();
        assert!(fx.is_effectful("f") && fx.is_effectful("g"));
        // A pure group stays pure.
        let mut pure = EffectSet::new();
        pure.observe_program("fun even n = if n = 0 then true else odd(n - 1) and odd n = if n = 0 then false else even(n - 1);")
            .unwrap();
        assert!(pure.is_empty());
    }

    #[test]
    fn parameters_shadow_effectful_names() {
        let mut fx = EffectSet::new();
        fx.observe_program("fun f x = insert(C, x);").unwrap();
        // `g`'s parameter f shadows the global: g is pure.
        fx.observe_program("fun g f = f;").unwrap();
        assert!(!fx.is_effectful("g"));
        // Conservative direction: a local binder shadowing f still
        // classifies the *statement* as a write (free_vars is exact, but
        // `let f = … in f(1) end` has no free f — so this stays a read).
        assert_eq!(
            fx.classify_program("let f = fn x => x in f(1) end")
                .unwrap(),
            StmtClass::Read
        );
    }

    #[test]
    fn constructor_positions_propagate_effectfulness() {
        // Regression pin: an effectful name is free in a record/tuple/set
        // literal exactly like in an application argument, so data-smuggled
        // mentions classify as writes.
        let mut fx = EffectSet::new();
        fx.observe_program("fun ins x = insert(C, x);").unwrap();
        for src in [
            "[f = ins]",                  // record field
            "{ins}",                      // set literal
            "[a = 1, b = [inner = ins]]", // nested constructor
            "IDView([f = ins])",          // object constructor
        ] {
            assert_eq!(fx.classify_program(src).unwrap(), StmtClass::Write, "{src}");
        }
        // Pure constructors stay reads.
        assert_eq!(
            fx.classify_program("[f = fn x => x]").unwrap(),
            StmtClass::Read
        );
    }

    #[test]
    fn storing_an_effectful_closure_taints_the_target() {
        let mut fx = EffectSet::new();
        // `box` starts out pure…
        fx.observe_program("val box = [F := fn x => x];").unwrap();
        assert!(!fx.is_effectful("box"));
        assert_eq!(fx.classify_program("(box.F)(o)").unwrap(), StmtClass::Read);
        // …until a sequenced write smuggles an effectful closure into it.
        fx.observe_program("update(box, F, fn x => insert(C, x))")
            .unwrap();
        assert!(fx.is_effectful("box"));
        assert_eq!(fx.classify_program("(box.F)(o)").unwrap(), StmtClass::Write);

        // Inserting an effect-carrying object taints the class: queries
        // against it can hand the closure out.
        let mut fx = EffectSet::new();
        fx.observe_program("insert(Tasks, IDView([Run = fn x => delete(Done, x)]))")
            .unwrap();
        assert!(fx.is_effectful("Tasks"));
        assert_eq!(
            fx.classify_program("cquery(fn s => s, Tasks)").unwrap(),
            StmtClass::Write
        );

        // Pure payloads taint nothing.
        let mut fx = EffectSet::new();
        fx.observe_program("update(box, F, fn x => x)").unwrap();
        fx.observe_program("insert(Tasks, IDView([N = 1]))")
            .unwrap();
        assert!(fx.is_empty());

        // A locally-bound target names no top-level binding: observing
        // `fn b => update(b, F, ins)` must not taint a global `b`.
        let mut fx = EffectSet::new();
        fx.observe_program("fun ins x = insert(C, x);").unwrap();
        fx.observe_program("val h = fn b => update(b, F, ins);")
            .unwrap();
        assert!(!fx.is_effectful("b"));
        assert!(fx.is_effectful("h"), "closure itself is effectful");
    }

    #[test]
    fn direct_application_of_an_effectful_name_taints_its_argument() {
        // Regression pin for the narrowed escape: a store that happens
        // *inside a called function* used to leave the argument unmarked.
        let mut fx = EffectSet::new();
        fx.observe_program("fun put b = update(b, F, fn x => insert(C, x));")
            .unwrap();
        fx.observe_program("val box = [F := fn x => x];").unwrap();
        assert!(!fx.is_effectful("box"));
        assert_eq!(fx.classify_program("(box.F)(o)").unwrap(), StmtClass::Read);
        // The sequenced call `put(box)` may store into box: taint it.
        fx.observe_program("put(box)").unwrap();
        assert!(fx.is_effectful("box"));
        assert_eq!(fx.classify_program("(box.F)(o)").unwrap(), StmtClass::Write);

        // A *locally-bound alias* of the effectful name is followed.
        let mut fx = EffectSet::new();
        fx.observe_program("fun put b = update(b, F, fn x => insert(C, x));")
            .unwrap();
        fx.observe_program("let g = put in g(crate_box) end")
            .unwrap();
        assert!(fx.is_effectful("crate_box"));

        // Curried spines taint every argument (conservative direction).
        let mut fx = EffectSet::new();
        fx.observe_program("fun put2 tag b = update(b, F, fn x => insert(C, x));")
            .unwrap();
        fx.observe_program("put2 label box2").unwrap();
        assert!(fx.is_effectful("box2"));
        assert!(fx.is_effectful("label"), "curried spine is tainted whole");

        // Application sites inside a `fun` body taint too — calling the
        // new function performs the inner store.
        let mut fx = EffectSet::new();
        fx.observe_program("fun put b = update(b, F, fn x => insert(C, x));")
            .unwrap();
        fx.observe_program("fun poke x = put(shared_box);").unwrap();
        assert!(fx.is_effectful("shared_box"));
    }

    #[test]
    fn app_taint_respects_shadowing_and_purity() {
        let mut fx = EffectSet::new();
        fx.observe_program("fun put b = update(b, F, fn x => insert(C, x));")
            .unwrap();
        // A local rebinding of `put` to a pure function shadows the
        // global: nothing is tainted.
        fx.observe_program("let put = fn x => x in put(box) end")
            .unwrap();
        assert!(!fx.is_effectful("box"));
        // A lambda parameter shadows, and lambda-bound arguments name no
        // top-level binding: `fn b => put(b)` taints no global `b`.
        fx.observe_program("val h = fn b => put(b);").unwrap();
        assert!(!fx.is_effectful("b"));
        assert!(fx.is_effectful("h"), "the closure itself is effectful");
        // Applying a *pure* function taints nothing.
        fx.observe_program("fun id x = x;").unwrap();
        fx.observe_program("id(box)").unwrap();
        assert!(!fx.is_effectful("box"));
        // Group parameters shadow inside `fun` bodies: `fun g put = put(v);`
        // applies its parameter, not the global.
        fx.observe_program("fun g put = put(v);").unwrap();
        assert!(!fx.is_effectful("v"));
    }

    #[test]
    fn effectful_names_roundtrip_through_mark() {
        let mut fx = EffectSet::new();
        fx.observe_program("fun f x = insert(C, x); val g = f;")
            .unwrap();
        let names: Vec<String> = fx
            .effectful_names()
            .map(|n| n.as_str().to_string())
            .collect();
        assert_eq!(names, ["f", "g"]);
        // Restore into a fresh set (the checkpoint-restart path).
        let mut restored = EffectSet::new();
        for n in &names {
            restored.mark_effectful(n.as_str());
        }
        assert!(restored.is_effectful("f") && restored.is_effectful("g"));
        assert_eq!(restored.classify_program("g(o)").unwrap(), StmtClass::Write);
    }

    #[test]
    fn class_with_effectful_predicate_marks_queries_as_writes() {
        let mut fx = EffectSet::new();
        fx.observe_program("fun track x = insert(Audit, x);")
            .unwrap();
        fx.observe_program(
            "class Logged = class {} include Staff as fn x => [Name = x.Name] \
             where fn x => query(fn p => track(p), x) end;",
        )
        .unwrap();
        assert!(fx.is_effectful("Logged"));
        assert_eq!(
            fx.classify_program("cquery(fn s => s, Logged)").unwrap(),
            StmtClass::Write
        );
        // A pure view class stays a read target.
        fx.observe_program(
            "class Female = class {} include Staff as fn x => [Name = x.Name] \
             where fn x => query(fn p => p.Sex = \"female\", x) end;",
        )
        .unwrap();
        assert!(!fx.is_effectful("Female"));
        assert_eq!(
            fx.classify_program("cquery(fn s => s, Female)").unwrap(),
            StmtClass::Read
        );
    }
}

//! Read/write classification of statements — the single source of truth
//! the serving layer (`crates/pool`) routes on.
//!
//! The calculus is purely functional at the value level: objects are
//! raw-object/view pairs (Fig. 3), and a query never changes what any later
//! statement observes. Persistent state changes come from exactly two
//! places:
//!
//! * **declarations** — `val`/`fun`/`class` extend the top-level type and
//!   value environments (and bump the engine's declaration epoch), and
//! * **store effects** — `insert`/`delete` change a class's own extent, and
//!   `update` assigns to a mutable record field.
//!
//! Everything else is a [`StmtClass::Read`]: it may allocate fresh
//! identities in the machine's store while it runs (records have L-value
//! identity, so evaluation is not *pure* in the allocation sense), but
//! nothing it creates is reachable from any later statement. That is the
//! property a replicated pool needs — reads can be served by any replica
//! without coordination, while writes must be sequenced through the
//! declaration log and replayed on every replica in the same order.
//!
//! [`crate::Database`]'s facade methods follow the same split (`query` is a
//! read, `insert`/`delete`/`exec` are writes), and
//! [`crate::Prepared::class`] classifies a compiled statement without
//! reparsing.

use polyview_parser::{parse_program, Decl};
use polyview_syntax::visit::walk;
use polyview_syntax::Expr;

/// Whether a statement changes state any later statement can observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StmtClass {
    /// No persistent effect: safe to serve on any replica of an engine kept
    /// in declaration-log lock-step.
    Read,
    /// Declares a top-level name or mutates the store: must be sequenced
    /// and replayed on every replica.
    Write,
}

impl StmtClass {
    pub fn is_read(self) -> bool {
        matches!(self, StmtClass::Read)
    }

    pub fn is_write(self) -> bool {
        matches!(self, StmtClass::Write)
    }
}

impl std::fmt::Display for StmtClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StmtClass::Read => write!(f, "read"),
            StmtClass::Write => write!(f, "write"),
        }
    }
}

/// Classify a bare expression: a write iff it contains an effectful node
/// (`insert`, `delete`, or `update`) anywhere, including under binders —
/// a lambda that *would* insert when applied is conservatively a write,
/// because evaluating the statement may apply it.
pub fn classify_expr(e: &Expr) -> StmtClass {
    let mut writes = false;
    walk(e, &mut |n| {
        if matches!(
            n,
            Expr::Insert(_, _) | Expr::Delete(_, _) | Expr::Update(_, _, _)
        ) {
            writes = true;
        }
    });
    if writes {
        StmtClass::Write
    } else {
        StmtClass::Read
    }
}

/// Classify a parsed declaration. `val`/`fun`/`class` always write (they
/// bind top-level names and bump the declaration epoch); a bare expression
/// writes iff [`classify_expr`] says so.
pub fn classify_decl(d: &Decl) -> StmtClass {
    match d {
        Decl::Val(_, _) | Decl::Fun(_) | Decl::Classes(_) => StmtClass::Write,
        Decl::Expr(e) => classify_expr(e),
    }
}

/// Classify a whole program (`;`-separated declarations): a write iff any
/// of its declarations writes. Parsing happens against no environment, so
/// classification needs no engine and can run on the submitting thread.
pub fn classify_program(src: &str) -> Result<StmtClass, polyview_parser::ParseError> {
    let decls = parse_program(src)?;
    Ok(if decls.iter().any(|d| classify_decl(d).is_write()) {
        StmtClass::Write
    } else {
        StmtClass::Read
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_are_writes() {
        assert_eq!(classify_program("val x = 1;").unwrap(), StmtClass::Write);
        assert_eq!(classify_program("fun f x = x;").unwrap(), StmtClass::Write);
        assert_eq!(
            classify_program("class C = class {} end;").unwrap(),
            StmtClass::Write
        );
    }

    #[test]
    fn store_effects_are_writes() {
        assert_eq!(
            classify_program("insert(C, IDView([Name = \"x\"]))").unwrap(),
            StmtClass::Write
        );
        assert_eq!(classify_program("delete(C, o)").unwrap(), StmtClass::Write);
        assert_eq!(
            classify_program("update(r, Salary, 99)").unwrap(),
            StmtClass::Write
        );
    }

    #[test]
    fn queries_and_expressions_are_reads() {
        for src in [
            "1 + 2",
            "query(fn x => x.Name, o)",
            "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)",
            "let x = 3 in x * x end",
            "[Name = \"joe\"]", // allocates an identity, but unreachably
        ] {
            assert_eq!(classify_program(src).unwrap(), StmtClass::Read, "{src}");
        }
    }

    #[test]
    fn effect_under_a_binder_is_conservatively_a_write() {
        assert_eq!(
            classify_program("fn x => insert(C, x)").unwrap(),
            StmtClass::Write
        );
        assert_eq!(
            classify_program("if b then update(r, F, 1) else ()").unwrap(),
            StmtClass::Write
        );
    }

    #[test]
    fn program_writes_if_any_decl_writes() {
        assert_eq!(
            classify_program("1 + 1; val x = 2; 3 + 3;").unwrap(),
            StmtClass::Write
        );
    }

    #[test]
    fn parse_errors_surface() {
        assert!(classify_program("val = 3").is_err());
    }
}

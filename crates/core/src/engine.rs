//! The engine: a persistent top-level session over the calculus.
//!
//! Each declaration is type-checked (inferring a principal scheme), then
//! evaluated; both the type environment and the value environment persist,
//! so later declarations see earlier ones. Static checking happens *before*
//! evaluation — the soundness theorem (Prop. 1) guarantees evaluation of a
//! well-typed program never raises a type-category error, and the engine's
//! tests assert exactly that.
//!
//! The engine is split into two phases (see [`crate::prepare`]):
//! *compilation* (parse + principal type inference, via
//! [`Engine::prepare`]) and *execution* ([`Engine::run`]). Expression entry
//! points ([`Engine::eval_expr`] / [`Engine::eval_to_string`]) route
//! through an LRU statement cache, so a repeated statement is compiled once
//! and then served with zero parser and zero inference work per call;
//! [`Engine::stats`] exposes counters that pin this down.

use crate::error::Error;
use crate::explain::Explain;
use crate::prepare::{
    CacheLookup, Deps, EngineStats, Prepared, StmtCache, StmtKey, DEFAULT_STMT_CACHE_CAPACITY,
};
use crate::profile::ProfileReport;
use polyview_eval::{decode_machine, encode_machine, Machine, Profile, Value};
use polyview_obs::{Clock, Counter, Histogram, Registry, Span, TraceSink, Tracer};
use polyview_parser::{parse_expr_counted, parse_program_counted, Decl, ParseStats};
use polyview_syntax::visit::{check_rec_class_scope, free_vars};
use polyview_syntax::{sugar, ClassDef, Expr, Kind, Label, Mono, Name, Scheme, TyVar};
use polyview_trans::{lower_binding, lower_statement, IndexSig, LowerStats};
use polyview_types::{builtins_sig, generalize, infer, Infer, TypeEnv, TypeTable};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

/// What a declaration-log replay did ([`Engine::replay`] /
/// [`Engine::from_log`]): entries applied, and how many of them failed
/// (failures are deterministic across replicas, so they are counted rather
/// than propagated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    pub applied: u64,
    pub errors: u64,
}

/// Result of executing one declaration.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Names bound by a `val`/`fun`/`class` declaration, with their
    /// principal schemes.
    Defined(Vec<(Name, Scheme)>),
    /// An evaluated bare expression.
    Value { scheme: Scheme, rendered: String },
}

/// Handles into the engine's metrics registry, resolved once at
/// construction so the hot paths pay a `Cell` bump per event and never hash
/// a metric name. The last block mirrors counters owned by the inference
/// context and the machine; they are synced into the registry only at
/// export time ([`Engine::metrics_json`]).
struct PhaseMetrics {
    parses: Counter,
    inferences: Counter,
    stmt_cache_hits: Counter,
    stmt_cache_misses: Counter,
    stmt_cache_evictions: Counter,
    stmt_cache_dep_invalidations: Counter,
    epoch_invalidations: Counter,
    tokens_lexed: Counter,
    nodes_parsed: Counter,
    parse_ns: Histogram,
    infer_ns: Histogram,
    lower_ns: Histogram,
    translate_ns: Histogram,
    eval_ns: Histogram,
    translated_size: Histogram,
    unify_steps: Counter,
    occurs_checks: Counter,
    kind_merges: Counter,
    instantiations: Counter,
    fuel_consumed: Counter,
    records_allocated: Counter,
    sets_allocated: Counter,
    field_offsets_resolved: Counter,
    dyn_field_fallbacks: Counter,
    /// Lowering-time twins of the two eval counters above: offsets the
    /// compile tier resolved statically, and the *static* residue it left
    /// behind (field ops it could not resolve). Distinct from
    /// `eval.dyn_field_fallbacks`, which counts fallbacks actually
    /// *executed* — the two disagree whenever residue sits on a cold
    /// branch or a fallback runs in a loop.
    lower_offsets: Counter,
    lower_residue: Counter,
}

impl PhaseMetrics {
    fn new(reg: &Registry) -> Self {
        PhaseMetrics {
            parses: reg.counter("engine.parses"),
            inferences: reg.counter("engine.inferences"),
            stmt_cache_hits: reg.counter("engine.stmt_cache_hits"),
            stmt_cache_misses: reg.counter("engine.stmt_cache_misses"),
            stmt_cache_evictions: reg.counter("engine.stmt_cache_evictions"),
            stmt_cache_dep_invalidations: reg.counter("engine.stmt_cache_dep_invalidations"),
            epoch_invalidations: reg.counter("engine.epoch_invalidations"),
            tokens_lexed: reg.counter("parser.tokens_lexed"),
            nodes_parsed: reg.counter("parser.nodes_parsed"),
            parse_ns: reg.histogram("phase.parse_ns"),
            infer_ns: reg.histogram("phase.infer_ns"),
            lower_ns: reg.histogram("phase.lower_ns"),
            translate_ns: reg.histogram("phase.translate_ns"),
            eval_ns: reg.histogram("phase.eval_ns"),
            translated_size: reg.histogram("trans.translated_size"),
            unify_steps: reg.counter("types.unify_steps"),
            occurs_checks: reg.counter("types.occurs_checks"),
            kind_merges: reg.counter("types.kind_merges"),
            instantiations: reg.counter("types.instantiations"),
            fuel_consumed: reg.counter("eval.fuel_consumed"),
            records_allocated: reg.counter("eval.records_allocated"),
            sets_allocated: reg.counter("eval.sets_allocated"),
            field_offsets_resolved: reg.counter("eval.field_offsets_resolved"),
            dyn_field_fallbacks: reg.counter("eval.dyn_field_fallbacks"),
            lower_offsets: reg.counter("trans.offsets_resolved"),
            lower_residue: reg.counter("trans.dynamic_residue"),
        }
    }
}

/// A persistent session: parser + inference + evaluation with shared
/// top-level environments, and a statement cache serving the
/// compile-once/run-many path.
///
/// Every engine carries an observability layer (DESIGN.md §9): a metrics
/// [`Registry`] always collecting phase latencies and pipeline counters,
/// and a [`Tracer`] that additionally emits per-phase span records to a
/// [`TraceSink`] when enabled ([`Engine::set_trace_sink`] /
/// [`Engine::set_tracing`]).
pub struct Engine {
    cx: Infer,
    tenv: TypeEnv,
    machine: Machine,
    stmts: StmtCache,
    metrics: Rc<Registry>,
    tracer: Tracer,
    phases: PhaseMetrics,
    /// Bumped by every declaration (`val`/`fun`/`class`). Staleness of
    /// prepared statements is decided per name ([`Engine::name_epoch`]);
    /// the global epoch remains as the fallback for [`Deps::Global`]
    /// statements and as an observability signal
    /// ([`crate::prepare::EngineStats`], pool convergence checks).
    env_epoch: u64,
    /// Per-name declaration epochs: how many times each top-level name has
    /// been (re)bound. A name absent from the map — every builtin, every
    /// prelude name until someone shadows it — has implicit epoch 0.
    /// [`Engine::prepare`] snapshots the epochs of a statement's free
    /// names; the statement is stale iff one of them moves (DESIGN.md §12).
    name_epochs: HashMap<Name, u64>,
    /// Compile tier toggle (DESIGN.md §13): when on (the default), every
    /// prepared statement and declaration is lowered to offset-resolved
    /// form before evaluation. Set it **before the first declaration** —
    /// code compiled under one setting must not run against bindings
    /// compiled under the other (use a fresh engine per backend, as the
    /// differential suite does).
    compile_tier: bool,
    /// Index signatures of top-level bindings the compile tier has
    /// index-abstracted: use sites of these names must apply one index
    /// argument per entry before their real arguments. Maintained in
    /// lock-step with the value environment — entries are cleared when
    /// their name is rebound ([`Engine::bump_epochs`]).
    index_sigs: HashMap<Name, Rc<IndexSig>>,
    /// `val g = f;` alias edges (alias → source). When a name is rebound,
    /// every alias that points at it (transitively) has its epoch bumped
    /// too: the alias's *value* still holds the old binding, so statements
    /// depending on the alias must go stale with the source (DESIGN.md
    /// §12).
    alias_edges: HashMap<Name, Name>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    pub fn new() -> Self {
        let metrics = Rc::new(Registry::new());
        let phases = PhaseMetrics::new(&metrics);
        Engine {
            cx: Infer::new(),
            tenv: builtins_sig::builtin_env(),
            machine: Machine::new(),
            stmts: StmtCache::new(DEFAULT_STMT_CACHE_CAPACITY),
            metrics,
            tracer: Tracer::disabled(),
            phases,
            env_epoch: 0,
            name_epochs: HashMap::new(),
            compile_tier: true,
            index_sigs: HashMap::new(),
            alias_edges: HashMap::new(),
        }
    }

    /// Toggle the compile tier (offset-resolved execution). On by default.
    /// Must be set before the first declaration: bindings compiled with
    /// the tier on hold index-abstracted values that only tier-compiled
    /// statements know how to call. Use a fresh engine per setting.
    pub fn set_compile_tier(&mut self, on: bool) {
        self.compile_tier = on;
    }

    /// Is the compile tier (offset-resolved execution) enabled?
    pub fn compile_tier(&self) -> bool {
        self.compile_tier
    }

    /// Cap evaluation steps (useful when running untrusted or generated
    /// programs that may diverge through `fix`).
    pub fn with_fuel(fuel: u64) -> Self {
        let mut e = Engine::new();
        e.machine.fuel = Some(fuel);
        e
    }

    /// Construct an engine by replaying a declaration log from offset 0 —
    /// how a replica (or a respawned worker) in a serving pool
    /// (`crates/pool`) catches up to its peers. Equivalent to `Engine::new`
    /// followed by [`Engine::replay`].
    pub fn from_log<'a>(entries: impl IntoIterator<Item = &'a str>) -> (Self, ReplaySummary) {
        let mut e = Engine::new();
        let summary = e.replay(entries);
        (e, summary)
    }

    /// Apply a sequence of already-sequenced declaration-log entries.
    ///
    /// Replay is *deterministic*: the engine's pipeline has no hidden
    /// nondeterminism, so two engines replaying the same entries in the
    /// same order end with the same `env_epoch`, the same top-level
    /// bindings, and extents that render identically. An entry that fails
    /// (parse, type, or runtime error) fails identically on every replica —
    /// its error is *counted*, not propagated, so replicas that already
    /// accepted the log's order never diverge on error handling.
    pub fn replay<'a>(&mut self, entries: impl IntoIterator<Item = &'a str>) -> ReplaySummary {
        let mut summary = ReplaySummary::default();
        for src in entries {
            summary.applied += 1;
            if self.exec(src).is_err() {
                summary.errors += 1;
            }
        }
        summary
    }

    /// Serialize the complete session state to the versioned snapshot
    /// format (DESIGN.md §17): the machine section (store, classes, value
    /// globals — object-identity sharing preserved) plus the type side
    /// (schemes resolved through the current substitution, free-variable
    /// kinds, the fresh-variable counter) and the engine bookkeeping
    /// (epochs, compile tier, index signatures, alias edges). Identical
    /// session state encodes to identical bytes.
    ///
    /// The statement cache, metrics, and tracer are deliberately absent:
    /// all are cold-start derivatives of the persisted state, so
    /// [`Engine::from_snapshot`] ∘ [`Engine::snapshot`] is
    /// observation-equivalent to the original engine (same bindings, same
    /// epochs, same extent renders) without being byte-identical in
    /// telemetry.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut globals: Vec<(Name, Scheme)> = self
            .tenv
            .globals()
            .map(|(n, s)| {
                (
                    n.clone(),
                    Scheme {
                        binders: s
                            .binders
                            .iter()
                            .map(|(v, k)| (*v, self.cx.resolve_kind(k)))
                            .collect(),
                        body: self.cx.resolve(&s.body),
                    },
                )
            })
            .collect();
        globals.sort_by(|a, b| a.0.cmp(&b.0));
        // Kinds of the variables still free in the resolved schemes: the
        // only part of the inference context a restored session can ask
        // about (instantiation reads binder kinds from the scheme itself).
        let mut free_kinds: BTreeMap<TyVar, Kind> = BTreeMap::new();
        for (_, s) in &globals {
            let binders: HashSet<TyVar> = s.binders.iter().map(|(v, _)| *v).collect();
            let mut vars = Vec::new();
            let mut seen = HashSet::new();
            self.cx.free_vars_deep(&s.body, &mut vars, &mut seen);
            for v in vars {
                if binders.contains(&v) {
                    continue;
                }
                let k = self.cx.resolve_kind(&self.cx.kind_of(v));
                if !k.is_univ() {
                    free_kinds.insert(v, k);
                }
            }
        }
        let mut name_epochs: Vec<(Name, u64)> = self
            .name_epochs
            .iter()
            .map(|(n, e)| (n.clone(), *e))
            .collect();
        name_epochs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut index_sigs: Vec<(Name, IndexSig)> = self
            .index_sigs
            .iter()
            .map(|(n, s)| (n.clone(), s.as_ref().clone()))
            .collect();
        index_sigs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut alias_edges: Vec<(Name, Name)> = self
            .alias_edges
            .iter()
            .map(|(a, s)| (a.clone(), s.clone()))
            .collect();
        alias_edges.sort_by(|a, b| a.0.cmp(&b.0));
        crate::snapshot::encode_parts(&crate::snapshot::EngineParts {
            machine_bytes: encode_machine(&self.machine),
            next_var: self.cx.vars_minted(),
            free_kinds: free_kinds.into_iter().collect(),
            globals,
            env_epoch: self.env_epoch,
            name_epochs,
            compile_tier: self.compile_tier,
            index_sigs,
            alias_edges,
        })
    }

    /// Reconstruct a session from [`Engine::snapshot`] bytes. Corrupt or
    /// truncated input, version skew, and snapshots from binaries with
    /// different builtins all fail loudly as [`Error::Snapshot`] — never a
    /// silently wrong engine.
    ///
    /// The restored engine answers every query, epoch probe, and extent
    /// render exactly as the snapshotted one did; replaying a log tail on
    /// top of it is equivalent to replaying the full log on a fresh
    /// engine (the pool's bounded-recovery path, DESIGN.md §17).
    pub fn from_snapshot(bytes: &[u8]) -> Result<Engine, Error> {
        let p = crate::snapshot::decode_parts(bytes)?;
        let machine = decode_machine(&p.machine_bytes)?;
        let mut e = Engine::new();
        e.machine = machine;
        e.cx.ensure_vars_above(p.next_var);
        for (v, k) in p.free_kinds {
            e.cx.set_kind(v, k);
        }
        for (n, s) in p.globals {
            e.tenv.define_global(n, s);
        }
        e.env_epoch = p.env_epoch;
        e.name_epochs = p.name_epochs.into_iter().collect();
        e.compile_tier = p.compile_tier;
        e.index_sigs = p
            .index_sigs
            .into_iter()
            .map(|(n, s)| (n, Rc::new(s)))
            .collect();
        e.alias_edges = p.alias_edges.into_iter().collect();
        Ok(e)
    }

    // ----- instrumented phases -----
    //
    // Each phase helper times one pipeline stage against the tracer clock,
    // feeds the duration into the phase histogram, and attaches the
    // per-statement work-counter deltas as span attributes (emitted only
    // when tracing is enabled). On an error the open span is dropped
    // without emitting; the phase counter has already been bumped.

    /// Record a finished parse: span attributes, latency, token/node
    /// totals. Returns the measured duration.
    fn note_parse(&mut self, mut span: Span, ps: ParseStats) -> u64 {
        span.attr("tokens", ps.tokens);
        span.attr("nodes", ps.nodes);
        let dur = span.finish(&self.tracer);
        self.phases.parse_ns.observe(dur);
        self.phases.tokens_lexed.add(ps.tokens);
        self.phases.nodes_parsed.add(ps.nodes);
        dur
    }

    /// Run an inference computation as the timed "infer" phase.
    fn infer_phase<T>(
        &mut self,
        f: impl FnOnce(&mut Infer, &mut TypeEnv) -> Result<T, polyview_types::TypeError>,
    ) -> Result<T, Error> {
        self.phases.inferences.inc();
        let before = self.cx.stats();
        let mut span = self.tracer.span("infer");
        let r = f(&mut self.cx, &mut self.tenv);
        let after = self.cx.stats();
        span.attr("unify_steps", after.unify_steps - before.unify_steps);
        span.attr("occurs_checks", after.occurs_checks - before.occurs_checks);
        span.attr("kind_merges", after.kind_merges - before.kind_merges);
        span.attr(
            "instantiations",
            after.instantiations - before.instantiations,
        );
        let dur = span.finish(&self.tracer);
        self.phases.infer_ns.observe(dur);
        Ok(r?)
    }

    /// Evaluate an expression as the timed "eval" phase.
    fn eval_phase(&mut self, e: &Expr) -> Result<Value, Error> {
        let before = self.machine.stats();
        let mut span = self.tracer.span("eval");
        let r = self.machine.eval_global(e);
        let after = self.machine.stats();
        span.attr("fuel", after.fuel_consumed - before.fuel_consumed);
        span.attr(
            "records",
            after.records_allocated - before.records_allocated,
        );
        span.attr("sets", after.sets_allocated - before.sets_allocated);
        span.attr(
            "offsets",
            after.field_offsets_resolved - before.field_offsets_resolved,
        );
        span.attr(
            "dyn_fallbacks",
            after.dyn_field_fallbacks - before.dyn_field_fallbacks,
        );
        let dur = span.finish(&self.tracer);
        self.phases.eval_ns.observe(dur);
        Ok(r?)
    }

    /// Execute a program: a sequence of declarations.
    pub fn exec(&mut self, src: &str) -> Result<Vec<Outcome>, Error> {
        self.phases.parses.inc();
        let span = self.tracer.span("parse");
        let (decls, ps) = parse_program_counted(src)?;
        self.note_parse(span, ps);
        let mut out = Vec::with_capacity(decls.len());
        for d in &decls {
            out.push(self.exec_decl(d)?);
        }
        Ok(out)
    }

    // ----- compile once / run many -----

    /// Compile a statement: parse it and infer its principal scheme. The
    /// returned [`Prepared`] can be executed any number of times with
    /// [`Engine::run`] without touching the parser or inference again.
    pub fn prepare(&mut self, src: &str) -> Result<Prepared, Error> {
        let ast = self.parse_counted(src)?;
        self.prepare_parsed(Some(src.to_string()), ast)
    }

    /// Compile a pre-built AST (no parsing at all): infer its principal
    /// scheme and package it for repeated execution. This is the path the
    /// [`crate::Database`] facade uses — operands are spliced as AST nodes,
    /// never as source text.
    pub fn prepare_expr(&mut self, ast: Expr) -> Result<Prepared, Error> {
        self.prepare_parsed(None, ast)
    }

    fn prepare_parsed(&mut self, src: Option<String>, ast: Expr) -> Result<Prepared, Error> {
        // Pin the AST behind `Rc` *before* inference: the type table keys
        // per-node results by node address, and the lowering pass must see
        // exactly the nodes inference recorded.
        let ast = Rc::new(ast);
        if self.compile_tier {
            self.cx.enable_table();
        }
        let scheme = self.infer_phase(|cx, tenv| cx.infer_scheme(tenv, &ast))?;
        let deps = self.snapshot_deps(&ast);
        let mut p = Prepared::new(src, ast.clone(), scheme, deps, self.env_epoch);
        if self.compile_tier {
            if let Some((code, stats, _)) =
                self.lower_phase(|table, sigs| lower_statement(&ast, table, sigs))
            {
                p.set_code(Rc::new(code), stats);
            }
        }
        Ok(p)
    }

    /// The dependency snapshot for an AST about to be prepared: every free
    /// top-level name paired with its current declaration epoch (absent
    /// names — builtins, the prelude — are epoch 0). The free-variable walk
    /// is binder-exact and total, so every engine-compiled statement gets
    /// [`Deps::Names`]; [`Deps::Global`] exists only as the defensive
    /// fallback for `Prepared` values built without an AST-derived set.
    fn snapshot_deps(&self, ast: &Expr) -> Deps {
        Deps::Names(
            free_vars(ast)
                .into_iter()
                .map(|n| {
                    let at = self.name_epochs.get(&n).copied().unwrap_or(0);
                    (n, at)
                })
                .collect(),
        )
    }

    /// Bump the declaration epochs for a declaration that (re)binds
    /// `names`: the global epoch once, and each bound name's own epoch.
    /// Callers must bump *before* the first environment mutation — a group
    /// declaration can fail partway through binding (see
    /// [`Engine::define_group`]), and cached statements must never keep
    /// validating against a partially-applied group.
    ///
    /// Aliases are invalidated transitively: if `g` was declared as
    /// `val g = f;`, its value snapshot of `f` is now stale, so `g`'s
    /// epoch moves with `f`'s — and so on through chains of aliases. Only
    /// the *directly* rebound names lose their alias/index-signature
    /// registry entries: a cascaded alias keeps its (old) value, which its
    /// recorded signature still describes.
    fn bump_epochs(&mut self, names: &[Name]) {
        self.env_epoch += 1;
        let mut bumped: HashSet<Name> = HashSet::new();
        for n in names {
            *self.name_epochs.entry(n.clone()).or_insert(0) += 1;
            self.index_sigs.remove(n);
            self.alias_edges.remove(n);
            bumped.insert(n.clone());
        }
        // Transitive closure over reverse alias edges: a worklist over a
        // src → aliases index, each alias bumped at most once (the
        // `bumped` guard also terminates (impossible) cyclic edge sets).
        let mut rev: HashMap<&Name, Vec<&Name>> = HashMap::new();
        for (alias, src) in &self.alias_edges {
            rev.entry(src).or_default().push(alias);
        }
        let mut work: Vec<Name> = names.to_vec();
        while let Some(n) = work.pop() {
            for alias in rev.get(&n).into_iter().flatten() {
                if bumped.insert((*alias).clone()) {
                    *self.name_epochs.entry((*alias).clone()).or_insert(0) += 1;
                    work.push((*alias).clone());
                }
            }
        }
    }

    /// Run the compile tier on one statement: consume the inference
    /// table recorded for it and lower, timed as the "lower" phase.
    /// Returns `None` when no table was recorded (tier off, or inference
    /// bypassed recording).
    fn lower_phase<T>(
        &mut self,
        f: impl FnOnce(&TypeTable, &HashMap<Name, Rc<IndexSig>>) -> (T, LowerStats),
    ) -> Option<(T, LowerStats, u64)> {
        let table = self.cx.take_table()?;
        let mut span = self.tracer.span("lower");
        let (out, stats) = f(&table, &self.index_sigs);
        self.phases.lower_offsets.add(stats.offsets_resolved);
        self.phases.lower_residue.add(stats.dynamic_residue);
        span.attr("offsets", stats.offsets_resolved);
        span.attr("index_params", stats.index_params_used);
        span.attr("abstractions", stats.index_abstractions);
        span.attr("residue", stats.dynamic_residue);
        span.attr("records", stats.records_lowered);
        let dur = span.finish(&self.tracer);
        self.phases.lower_ns.observe(dur);
        Some((out, stats, dur))
    }

    /// Execute a prepared statement against the current store. No parsing,
    /// no inference: the cached AST is evaluated directly under the global
    /// environment. Fails with [`Error::StalePrepared`] if a name the
    /// statement depends on has been rebound since it was prepared
    /// (re-`prepare` it; the internal statement cache does this
    /// automatically). Declarations of unrelated names do not invalidate.
    pub fn run(&mut self, p: &Prepared) -> Result<Value, Error> {
        if !p.is_fresh(&self.name_epochs, self.env_epoch) {
            self.phases.epoch_invalidations.inc();
            return Err(Error::StalePrepared);
        }
        self.eval_phase(p.code())
    }

    /// [`Engine::run`], rendering the result.
    pub fn run_to_string(&mut self, p: &Prepared) -> Result<String, Error> {
        let v = self.run(p)?;
        Ok(self.machine.show(&v))
    }

    /// Execute a statement through the LRU statement cache: on a hit the
    /// cached compiled form runs directly; on a miss (or a stale entry)
    /// `build` compiles a fresh [`Prepared`], which is cached for next
    /// time.
    pub(crate) fn eval_cached(
        &mut self,
        key: StmtKey,
        build: impl FnOnce(&mut Self) -> Result<Prepared, Error>,
    ) -> Result<(Scheme, Value), Error> {
        match self.stmts.lookup(&key, &self.name_epochs, self.env_epoch) {
            CacheLookup::Hit(p) => {
                self.phases.stmt_cache_hits.inc();
                let scheme = p.scheme().clone();
                let v = self.eval_phase(p.code())?;
                return Ok((scheme, v));
            }
            CacheLookup::Stale => {
                self.phases.stmt_cache_dep_invalidations.inc();
                self.phases.stmt_cache_misses.inc();
            }
            CacheLookup::Miss => self.phases.stmt_cache_misses.inc(),
        }
        let p = build(self)?;
        let scheme = p.scheme().clone();
        let v = self.eval_phase(p.code())?;
        let evicted = self.stmts.insert(key, p);
        self.phases.stmt_cache_evictions.add(evicted as u64);
        Ok((scheme, v))
    }

    fn parse_counted(&mut self, src: &str) -> Result<Expr, Error> {
        self.phases.parses.inc();
        let span = self.tracer.span("parse");
        let (ast, ps) = parse_expr_counted(src)?;
        self.note_parse(span, ps);
        Ok(ast)
    }

    /// Parse one complete expression to be spliced into a larger statement
    /// *as an AST node* (the [`crate::Database`] facade's operands).
    /// Trailing input is a parse error here — an operand can never smuggle
    /// in additional statements — and typing happens once, on the
    /// assembled statement.
    pub(crate) fn parse_operand(&mut self, src: &str) -> Result<Expr, Error> {
        self.parse_counted(src)
    }

    /// A snapshot of the pipeline counters: compilation work, statement
    /// cache traffic, inference and evaluation work.
    pub fn stats(&self) -> EngineStats {
        let i = self.cx.stats();
        let m = self.machine.stats();
        EngineStats {
            parses: self.phases.parses.get(),
            inferences: self.phases.inferences.get(),
            stmt_cache_hits: self.phases.stmt_cache_hits.get(),
            stmt_cache_misses: self.phases.stmt_cache_misses.get(),
            stmt_cache_evictions: self.phases.stmt_cache_evictions.get(),
            stmt_cache_dep_invalidations: self.phases.stmt_cache_dep_invalidations.get(),
            epoch_invalidations: self.phases.epoch_invalidations.get(),
            tokens_lexed: self.phases.tokens_lexed.get(),
            nodes_parsed: self.phases.nodes_parsed.get(),
            unify_steps: i.unify_steps,
            occurs_checks: i.occurs_checks,
            kind_merges: i.kind_merges,
            instantiations: i.instantiations,
            fuel_consumed: m.fuel_consumed,
            records_allocated: m.records_allocated,
            sets_allocated: m.sets_allocated,
            field_offsets_resolved: m.field_offsets_resolved,
            dyn_field_fallbacks: m.dyn_field_fallbacks,
        }
    }

    /// Zero every counter and histogram — the registry's metrics, the
    /// inference work counters, and the machine work counters. Histogram
    /// and counter handles stay live; environments and caches are
    /// untouched.
    pub fn reset_stats(&mut self) {
        self.metrics.reset();
        self.cx.reset_stats();
        self.machine.reset_stats();
    }

    // ----- observability -----

    /// The engine's metrics registry (counters and phase-latency
    /// histograms, always on).
    pub fn metrics_registry(&self) -> &Registry {
        &self.metrics
    }

    /// Export every metric as JSON lines — exactly one JSON object per
    /// line. Counters owned by the inference context and the machine are
    /// synced into the registry first, so the export is a complete,
    /// self-consistent snapshot.
    pub fn metrics_json(&self) -> String {
        let i = self.cx.stats();
        let m = self.machine.stats();
        self.phases.unify_steps.set(i.unify_steps);
        self.phases.occurs_checks.set(i.occurs_checks);
        self.phases.kind_merges.set(i.kind_merges);
        self.phases.instantiations.set(i.instantiations);
        self.phases.fuel_consumed.set(m.fuel_consumed);
        self.phases.records_allocated.set(m.records_allocated);
        self.phases.sets_allocated.set(m.sets_allocated);
        self.phases
            .field_offsets_resolved
            .set(m.field_offsets_resolved);
        self.phases.dyn_field_fallbacks.set(m.dyn_field_fallbacks);
        self.metrics.to_json_lines()
    }

    /// Replace the tracer clock (inject a
    /// [`polyview_obs::ManualClock`] for deterministic phase timings in
    /// tests). The evaluation profiler is wired to the same clock, so one
    /// injection makes phase timings *and* profile trees deterministic.
    pub fn set_clock(&mut self, clock: Rc<dyn Clock>) {
        self.machine.set_profile_clock(Rc::clone(&clock));
        self.tracer.set_clock(clock);
    }

    /// Install a trace sink and enable span emission. Phase timings and
    /// histograms are always collected; the sink only receives the
    /// per-phase [`polyview_obs::SpanRecord`]s.
    pub fn set_trace_sink(&mut self, sink: Rc<dyn TraceSink>) {
        self.tracer.set_sink(sink);
    }

    /// Toggle span emission to the installed sink.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Is span emission currently enabled?
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Stamp every subsequent phase span with `key = value` as its first
    /// attribute, until [`Engine::clear_span_tag`]. An embedding layer
    /// (the serving pool) uses this to tag parse/infer/translate/eval
    /// spans with the request they run on behalf of, so one trace id
    /// stitches the router's and the replica's views together.
    pub fn set_span_tag(&mut self, key: impl Into<String>, value: u64) {
        self.tracer.set_tag(Some((key.into(), value)));
    }

    /// Stop stamping phase spans (see [`Engine::set_span_tag`]).
    pub fn clear_span_tag(&mut self) {
        self.tracer.set_tag(None);
    }

    /// Compile and run `src` with every phase timed and its work counters
    /// diffed, returning a per-statement [`Explain`] report.
    ///
    /// Explain always compiles fresh — a cached compilation would report
    /// zero parse and inference work — but it consults the cache first to
    /// report whether a plain [`Engine::eval_expr`] would have hit, and it
    /// stores the fresh compilation so subsequent calls do.
    pub fn explain(&mut self, src: &str) -> Result<Explain, Error> {
        let key = StmtKey::Src(src.to_string());
        let cached_before = self
            .stmts
            .contains_valid(&key, &self.name_epochs, self.env_epoch);
        if cached_before {
            self.phases.stmt_cache_hits.inc();
        } else {
            self.phases.stmt_cache_misses.inc();
        }

        self.phases.parses.inc();
        let span = self.tracer.span("parse");
        let (ast, ps) = parse_expr_counted(src)?;
        let parse_ns = self.note_parse(span, ps);

        let i_before = self.cx.stats();
        self.phases.inferences.inc();
        if self.compile_tier {
            self.cx.enable_table();
        }
        let mut span = self.tracer.span("infer");
        let scheme_res = self.cx.infer_scheme(&mut self.tenv, &ast);
        let i = {
            let after = self.cx.stats();
            polyview_types::InferStats {
                unify_steps: after.unify_steps - i_before.unify_steps,
                occurs_checks: after.occurs_checks - i_before.occurs_checks,
                kind_merges: after.kind_merges - i_before.kind_merges,
                instantiations: after.instantiations - i_before.instantiations,
            }
        };
        span.attr("unify_steps", i.unify_steps);
        span.attr("occurs_checks", i.occurs_checks);
        span.attr("kind_merges", i.kind_merges);
        span.attr("instantiations", i.instantiations);
        let infer_ns = span.finish(&self.tracer);
        self.phases.infer_ns.observe(infer_ns);
        let scheme = scheme_res?;

        // Compile tier: lower to offset-resolved form (timed), keeping the
        // per-op report for the render below.
        let mut lower_ns = 0;
        let mut lower = LowerStats::default();
        let mut offset_rows = Vec::new();
        let code = if self.compile_tier {
            match self.lower_phase(|table, sigs| lower_statement(&ast, table, sigs)) {
                Some((c, st, dur)) => {
                    lower = st;
                    offset_rows = polyview_trans::offset_report(&c);
                    lower_ns = dur;
                    Some(Rc::new(c))
                }
                None => None,
            }
        } else {
            None
        };

        let mut span = self.tracer.span("translate");
        let (_core, ts) = polyview_trans::translate_measured(&ast);
        span.attr("core_nodes", ts.translated_size);
        let translate_ns = span.finish(&self.tracer);
        self.phases.translate_ns.observe(translate_ns);
        self.phases.translated_size.observe(ts.translated_size);

        let m_before = self.machine.stats();
        let mut span = self.tracer.span("eval");
        let v_res = self.machine.eval_global(code.as_deref().unwrap_or(&ast));
        let m = {
            let after = self.machine.stats();
            polyview_eval::MachineStats {
                fuel_consumed: after.fuel_consumed - m_before.fuel_consumed,
                records_allocated: after.records_allocated - m_before.records_allocated,
                sets_allocated: after.sets_allocated - m_before.sets_allocated,
                field_offsets_resolved: after.field_offsets_resolved
                    - m_before.field_offsets_resolved,
                dyn_field_fallbacks: after.dyn_field_fallbacks - m_before.dyn_field_fallbacks,
            }
        };
        span.attr("fuel", m.fuel_consumed);
        span.attr("records", m.records_allocated);
        span.attr("sets", m.sets_allocated);
        span.attr("offsets", m.field_offsets_resolved);
        span.attr("dyn_fallbacks", m.dyn_field_fallbacks);
        let eval_ns = span.finish(&self.tracer);
        self.phases.eval_ns.observe(eval_ns);
        let v = v_res?;
        let rendered = self.machine.show(&v);

        let deps = self.snapshot_deps(&ast);
        let dep_rows = match &deps {
            Deps::Names(ds) => ds
                .iter()
                .map(|(n, at)| (n.as_str().to_string(), *at))
                .collect(),
            Deps::Global(_) => Vec::new(),
        };
        let mut p = Prepared::new(
            Some(src.to_string()),
            Rc::new(ast),
            scheme.clone(),
            deps,
            self.env_epoch,
        );
        if let Some(code) = code {
            p.set_code(code, lower);
        }
        let evicted = self.stmts.insert(key, p);
        self.phases.stmt_cache_evictions.add(evicted as u64);

        Ok(Explain {
            src: src.to_string(),
            scheme,
            rendered,
            cached_before,
            deps: dep_rows,
            parse_ns,
            infer_ns,
            lower_ns,
            translate_ns,
            eval_ns,
            tokens: ps.tokens,
            nodes: ps.nodes,
            unify_steps: i.unify_steps,
            occurs_checks: i.occurs_checks,
            kind_merges: i.kind_merges,
            instantiations: i.instantiations,
            offsets_resolved: lower.offsets_resolved,
            index_params_used: lower.index_params_used,
            index_abstractions: lower.index_abstractions,
            dynamic_residue: lower.dynamic_residue,
            records_lowered: lower.records_lowered,
            offset_rows,
            translated_size: ts.translated_size,
            fuel_consumed: m.fuel_consumed,
            records_allocated: m.records_allocated,
            sets_allocated: m.sets_allocated,
            field_offsets_resolved: m.field_offsets_resolved,
            dyn_field_fallbacks: m.dyn_field_fallbacks,
        })
    }

    /// Compile and run `src` with the evaluation profiler attached,
    /// returning a per-node attribution report (REPL `:profile`).
    ///
    /// Like [`Engine::explain`], profile compiles fresh — but unlike
    /// explain it does *not* install the compilation in the statement
    /// cache: a profile run exists to be observed, and leaving the cache
    /// untouched keeps `:profile x; :explain x` reporting an honest miss.
    /// The profiler is scoped to the eval phase, so parse/infer/lower work
    /// never appears in the tree.
    pub fn profile(&mut self, src: &str) -> Result<ProfileReport, Error> {
        let ast = self.parse_counted(src)?;
        let p = self.prepare_parsed(Some(src.to_string()), ast)?;
        self.machine.profile_start();
        let r = self.eval_phase(p.code());
        let profile = self.machine.profile_stop().unwrap_or_default();
        let v = r?;
        let rendered = self.machine.show(&v);
        let class_names = self.class_names();
        Ok(ProfileReport {
            src: src.to_string(),
            scheme: p.scheme().clone(),
            rendered,
            eval_ns: profile.total_ns(),
            profile,
            class_names,
        })
    }

    /// Attach the evaluation profiler to the machine: every statement run
    /// from now on accumulates into one profile, until
    /// [`Engine::stop_profiling`]. This is the embedding-layer API (the
    /// serving pool samples requests with it); [`Engine::profile`] is the
    /// one-statement convenience.
    pub fn start_profiling(&mut self) {
        self.machine.profile_start();
    }

    /// Detach the profiler and return what it collected (`None` if
    /// profiling was never started).
    pub fn stop_profiling(&mut self) -> Option<Profile> {
        self.machine.profile_stop()
    }

    /// Class-id → bound-name pairs from the global environment, for
    /// rendering view-recompute attribution. When several names alias one
    /// class the lexically smallest name wins (deterministic).
    pub(crate) fn class_names(&self) -> Vec<(usize, String)> {
        let mut names: Vec<(usize, String)> = Vec::new();
        for (n, v) in self.machine.globals_iter() {
            if let Value::Class(id) = v {
                names.push((*id, n.as_str().to_string()));
            }
        }
        names.sort();
        names.dedup_by_key(|(id, _)| *id);
        names
    }

    /// Number of statements currently held compiled in the cache.
    pub fn stmt_cache_len(&self) -> usize {
        self.stmts.len()
    }

    /// Statement-cache capacity (number of distinct statements kept
    /// compiled).
    pub fn stmt_cache_capacity(&self) -> usize {
        self.stmts.capacity()
    }

    /// Resize the statement cache (0 disables caching — every call
    /// recompiles, the "cold" path the prepared bench compares against).
    /// Shrinking below the current length evicts oldest-first,
    /// deterministically; the evictions show up in
    /// [`EngineStats::stmt_cache_evictions`].
    pub fn set_stmt_cache_capacity(&mut self, capacity: usize) {
        let evicted = self.stmts.set_capacity(capacity);
        self.phases.stmt_cache_evictions.add(evicted as u64);
    }

    /// Drop every cached statement (they recompile on next use).
    pub fn clear_stmt_cache(&mut self) {
        self.stmts.clear();
    }

    /// The current declaration epoch (bumped by `val`/`fun`/`class`).
    /// Observability only — staleness is decided per name, see
    /// [`Engine::name_epoch`].
    pub fn env_epoch(&self) -> u64 {
        self.env_epoch
    }

    /// How many times `name` has been (re)bound at top level. Names never
    /// bound by a declaration — builtins, prelude names — are epoch 0.
    pub fn name_epoch(&self, name: &str) -> u64 {
        self.name_epochs
            .get(&Label::new(name))
            .copied()
            .unwrap_or(0)
    }

    /// Type-check and evaluate a single expression. Served from the
    /// statement cache: repeating the same source performs no parsing and
    /// no inference.
    pub fn eval_expr(&mut self, src: &str) -> Result<(Scheme, Value), Error> {
        self.eval_cached(StmtKey::Src(src.to_string()), |eng| eng.prepare(src))
    }

    /// Evaluate an expression and render the result.
    pub fn eval_to_string(&mut self, src: &str) -> Result<String, Error> {
        let (_, v) = self.eval_expr(src)?;
        Ok(self.machine.show(&v))
    }

    /// Infer the principal scheme of an expression without evaluating it.
    pub fn infer_expr(&mut self, src: &str) -> Result<Scheme, Error> {
        let e = self.parse_counted(src)?;
        self.infer_phase(|cx, tenv| cx.infer_scheme(tenv, &e))
    }

    /// Type-check and evaluate a pre-built AST (uncached; see
    /// [`Engine::prepare_expr`] for the compile-once path).
    pub fn eval_ast(&mut self, e: &Expr) -> Result<(Scheme, Value), Error> {
        if self.compile_tier {
            self.cx.enable_table();
        }
        let scheme = self.infer_phase(|cx, tenv| cx.infer_scheme(tenv, e))?;
        let code = if self.compile_tier {
            self.lower_phase(|table, sigs| lower_statement(e, table, sigs))
                .map(|(c, _, _)| c)
        } else {
            None
        };
        let v = self.eval_phase(code.as_ref().unwrap_or(e))?;
        Ok((scheme, v))
    }

    /// Execute one declaration.
    pub fn exec_decl(&mut self, d: &Decl) -> Result<Outcome, Error> {
        match d {
            Decl::Val(name, e) => {
                if self.compile_tier {
                    self.cx.enable_table();
                }
                let scheme = self.infer_phase(|cx, tenv| cx.infer_scheme(tenv, e))?;
                self.cx.check_ground_mutables(&scheme.body)?;
                let mut sig = None;
                let lowered = if self.compile_tier {
                    self.lower_phase(|table, sigs| {
                        let (c, s, st) = lower_binding(e, &scheme.binders, table, sigs);
                        ((c, s), st)
                    })
                } else {
                    None
                };
                let v = match &lowered {
                    Some(((code, s), _, _)) => {
                        sig = s.clone();
                        self.eval_phase(code)?
                    }
                    None => self.eval_phase(e)?,
                };
                self.bump_epochs(std::slice::from_ref(name));
                if let Some(s) = sig {
                    self.index_sigs.insert(name.clone(), s);
                }
                if let Expr::Var(src) = e {
                    self.alias_edges.insert(name.clone(), src.clone());
                }
                self.tenv.define_global(name.clone(), scheme.clone());
                self.machine.define_global(name.clone(), v);
                Ok(Outcome::Defined(vec![(name.clone(), scheme)]))
            }
            Decl::Fun(defs) => self.exec_fun(defs),
            Decl::Classes(binds) => self.exec_classes(binds),
            Decl::Expr(e) => {
                if self.compile_tier {
                    self.cx.enable_table();
                }
                let scheme = self.infer_phase(|cx, tenv| cx.infer_scheme(tenv, e))?;
                let code = if self.compile_tier {
                    self.lower_phase(|table, sigs| lower_statement(e, table, sigs))
                        .map(|(c, _, _)| c)
                } else {
                    None
                };
                let v = self.eval_phase(code.as_ref().unwrap_or(e))?;
                Ok(Outcome::Value {
                    scheme,
                    rendered: self.machine.show(&v),
                })
            }
        }
    }

    /// `fun f x = e and …`: encode with the paper's `fix`/record
    /// construction and bind each function. The group encoding is
    /// expansive, but its value is a closure for every definition, so
    /// top-level generalization is sound; we generalize explicitly.
    ///
    /// The whole group is elaborated **once**: one `fun_and` wrapper whose
    /// body is the tuple of the defined names, one inference run, one
    /// evaluation — then each binding's scheme is generalized from its
    /// component type and its closure projected from the group value. (The
    /// previous implementation re-elaborated the entire group per bound
    /// name, O(n²) in the group size.)
    fn exec_fun(&mut self, defs: &[(Name, Vec<Name>, Expr)]) -> Result<Outcome, Error> {
        let singles: Vec<(Label, Label, Expr)> = defs
            .iter()
            .map(|(f, params, e)| {
                let mut params = params.clone();
                let first = params.remove(0);
                let curried = params
                    .into_iter()
                    .rev()
                    .fold(e.clone(), |acc, p| Expr::lam(p, acc));
                (f.clone(), first, curried)
            })
            .collect();
        let names: Vec<Name> = defs.iter().map(|(f, _, _)| f.clone()).collect();
        let body = if names.len() == 1 {
            Expr::Var(names[0].clone())
        } else {
            Expr::tuple(names.iter().map(|n| Expr::Var(n.clone())))
        };
        let group = sugar::fun_and(singles, body);
        if self.compile_tier {
            self.cx.enable_table();
        }
        let t = self.infer_phase(|cx, tenv| infer::infer(cx, tenv, &group))?;
        let t = self.cx.resolve(&t);

        if self.compile_tier && names.len() == 1 {
            // A single definition elaborates to `let f = fix f => λ… in f
            // end`; index-abstract the `fix` itself (the same node
            // inference recorded) so a record-polymorphic function takes
            // its offsets as parameters. The binders come from the table's
            // recorded *let scheme* — they name the rhs's own type
            // variables, which is what the rhs's operand records refer to.
            // The global scheme, however, is re-generalized from the
            // group's body occurrence (a fresh instantiation), so the sig
            // we register must be renamed through that occurrence's
            // instantiation record before use sites can consult it.
            // Mutually recursive groups stay on the plain-lowered path
            // below — their bundle encoding is not a λ, so they keep
            // dynamic lookups as documented residue.
            if let Expr::Let(_, rhs, body) = &group {
                let lowered = self.lower_phase(|table, sigs| {
                    let binders = table
                        .let_schemes
                        .get(&polyview_types::table::node_id(&group))
                        .cloned()
                        .unwrap_or_default();
                    let (c, s, st) = lower_binding(rhs, &binders, table, sigs);
                    let renamed = match s {
                        None => Some((c, None)),
                        Some(s) => table
                            .instantiations
                            .get(&polyview_types::table::node_id(body))
                            .and_then(|inst| {
                                s.iter()
                                    .map(|(b, l)| {
                                        inst.iter().find(|(bb, _)| bb == b).and_then(|(_, m)| {
                                            match m {
                                                Mono::Var(g) => Some((*g, l.clone())),
                                                _ => None,
                                            }
                                        })
                                    })
                                    .collect::<Option<IndexSig>>()
                            })
                            .map(|r| (c, Some(Rc::new(r)))),
                    };
                    (renamed, st)
                });
                if let Some((Some((code, sig)), _, _)) = lowered {
                    let v = self.eval_phase(&code)?;
                    let bound = self.define_group(&names, vec![t], v, true)?;
                    if let Some(s) = sig {
                        self.index_sigs.insert(names[0].clone(), s);
                    }
                    return Ok(Outcome::Defined(bound));
                }
                // Renaming failed (or the table was off): fall through to
                // the plain path, which keeps the un-abstracted encoding.
            }
        }

        let code = if self.compile_tier {
            self.lower_phase(|table, sigs| lower_statement(&group, table, sigs))
                .map(|(c, _, _)| c)
        } else {
            None
        };
        let v = self.eval_phase(code.as_ref().unwrap_or(&group))?;

        let tys = if names.len() == 1 {
            vec![t]
        } else {
            group_component_types(&t, names.len(), "fun group")?
        };
        let bound = self.define_group(&names, tys, v, true)?;
        Ok(Outcome::Defined(bound))
    }

    /// Bind the members of an already-elaborated `fun`/`class` group:
    /// project each member's value out of the group tuple and define it
    /// globally, generalizing the scheme when `generalize` holds.
    ///
    /// Epochs (global and per-name) are bumped **before** the first
    /// `define_global` — the per-member projection can fail mid-loop
    /// (`field_of` on a malformed group value), and by then earlier members
    /// have already been redefined. Bumping first means every cached
    /// statement that depends on a group member is invalidated even when
    /// the group only partially applies; the environment may hold a
    /// half-bound group after such an error, but nothing stale can run
    /// against it.
    fn define_group(
        &mut self,
        names: &[Name],
        tys: Vec<Mono>,
        v: Value,
        generalize: bool,
    ) -> Result<Vec<(Name, Scheme)>, Error> {
        self.bump_epochs(names);
        let mut bound = Vec::with_capacity(names.len());
        for (i, (n, ti)) in names.iter().zip(tys).enumerate() {
            let scheme = if generalize {
                self.cx.generalize(&self.tenv, &ti)
            } else {
                Scheme::mono(ti)
            };
            let vi = if names.len() == 1 {
                v.clone()
            } else {
                self.machine.field_of(&v, Label::tuple(i + 1).as_str())?
            };
            self.tenv.define_global(n.clone(), scheme.clone());
            self.machine.define_global(n.clone(), vi);
            bound.push((n.clone(), scheme));
        }
        Ok(bound)
    }

    /// `class A = class … end and …`: a top-level (possibly mutually
    /// recursive) class group, typed by the Fig. 6 rule and bound
    /// persistently.
    fn exec_classes(&mut self, binds: &[(Name, ClassDef)]) -> Result<Outcome, Error> {
        check_rec_class_scope(binds).map_err(polyview_types::TypeError::from)?;
        // Type the group by wrapping it as let-classes returning the tuple
        // of the bound class values; evaluating the same wrapper once
        // yields the values to destructure.
        let names: Vec<Name> = binds.iter().map(|(n, _)| n.clone()).collect();
        let body = if names.len() == 1 {
            Expr::Var(names[0].clone())
        } else {
            Expr::tuple(names.iter().map(|n| Expr::Var(n.clone())))
        };
        let wrapped = Expr::LetClasses(binds.to_vec(), Box::new(body));
        if self.compile_tier {
            self.cx.enable_table();
        }
        let t = self.infer_phase(|cx, tenv| infer::infer(cx, tenv, &wrapped))?;
        let t = self.cx.resolve(&t);
        let code = if self.compile_tier {
            self.lower_phase(|table, sigs| lower_statement(&wrapped, table, sigs))
                .map(|(c, _, _)| c)
        } else {
            None
        };
        let v = self.eval_phase(code.as_ref().unwrap_or(&wrapped))?;

        let tys = if names.len() == 1 {
            vec![t]
        } else {
            group_component_types(&t, names.len(), "class group")?
        };
        let bound = self.define_group(&names, tys, v, false)?;
        Ok(Outcome::Defined(bound))
    }

    /// The principal scheme of a bound name, if any, resolved through the
    /// current substitution (a top-level class may start with an
    /// unconstrained element type that later declarations pin down).
    pub fn scheme_of(&self, name: &str) -> Option<Scheme> {
        self.tenv.lookup(&Label::new(name)).map(|s| Scheme {
            binders: s.binders.clone(),
            body: self.cx.resolve(&s.body),
        })
    }

    /// The current value of a bound name, if any.
    pub fn value_of(&self, name: &str) -> Option<Value> {
        self.machine.global(&Label::new(name)).cloned()
    }

    /// Render any value using the engine's store.
    pub fn show(&self, v: &Value) -> String {
        self.machine.show(v)
    }

    /// Direct access to the evaluation machine (extents, stores, classes).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Direct access to the inference context (for tooling/tests).
    pub fn infer_ctx(&mut self) -> &mut Infer {
        &mut self.cx
    }

    /// Check whether an expression is generalizable (value restriction).
    pub fn is_value_form(e: &Expr) -> bool {
        generalize::is_nonexpansive(e)
    }

    /// Load the standard prelude ([`crate::prelude::PRELUDE`]): `count`,
    /// `sum`, `exists`, `forall`, `diff`, `subset`, `flatten`,
    /// `materialize`, `extent`, `csize`, ….
    pub fn load_prelude(&mut self) -> Result<(), Error> {
        self.exec(crate::prelude::PRELUDE)?;
        Ok(())
    }

    /// Translate an expression through the paper's Figs. 3/5 semantics into
    /// a pure core-language term (type-checked first). For the cached
    /// equivalent, use [`Engine::prepare`] + [`Prepared::translation`].
    pub fn translate_expr(&mut self, src: &str) -> Result<Expr, Error> {
        let e = self.parse_counted(src)?;
        self.infer_phase(|cx, tenv| cx.infer_scheme(tenv, &e))?;
        let mut span = self.tracer.span("translate");
        let (core, ts) = polyview_trans::translate_measured(&e);
        span.attr("core_nodes", ts.translated_size);
        let dur = span.finish(&self.tracer);
        self.phases.translate_ns.observe(dur);
        self.phases.translated_size.observe(ts.translated_size);
        Ok(core)
    }
}

/// Destructure the resolved type of a declaration-group wrapper (`fun … and
/// …` / `class … and …` with a tuple body) into its component types. The
/// wrapper is constructed to type as an n-tuple, so anything else is an
/// engine invariant violation — reported as [`Error::Internal`], never a
/// panic (this path used to `unreachable!` and index unchecked).
fn group_component_types(t: &Mono, n: usize, what: &str) -> Result<Vec<Mono>, Error> {
    let parts = match t {
        Mono::Record(fs) => fs,
        other => {
            return Err(Error::Internal(format!(
                "{what} wrapper must type as a tuple, got {other}"
            )))
        }
    };
    (1..=n)
        .map(|i| {
            parts
                .get(&Label::tuple(i))
                .map(|f| f.ty.clone())
                .ok_or_else(|| {
                    Error::Internal(format!("{what} wrapper type is missing component #{i}"))
                })
        })
        .collect()
}

/// Run a computation on a dedicated thread with a large stack. The
/// tree-walking evaluator recurses with the interpreted program, so deeply
/// recursive user programs (e.g. non-tail `fix` loops over big inputs) can
/// exhaust the default stack; construct the [`Engine`] inside the closure
/// and size the stack to the workload.
///
/// ```
/// let out = polyview::engine::with_stack_size(256 * 1024 * 1024, || {
///     let mut e = polyview::Engine::new();
///     e.exec("fun sum n = if n = 0 then 0 else n + sum (n - 1);")
///         .expect("defines");
///     e.eval_to_string("sum 5000").expect("runs")
/// });
/// assert_eq!(out, "12502500");
/// ```
pub fn with_stack_size<R: Send>(stack_bytes: usize, f: impl FnOnce() -> R + Send) -> R {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(stack_bytes)
            .spawn_scoped(scope, f)
            .expect("spawn evaluation thread")
            .join()
            .expect("evaluation thread panicked")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_definition_persists() {
        let mut e = Engine::new();
        e.exec("val x = 41;").expect("defines");
        assert_eq!(e.eval_to_string("x + 1").expect("query"), "42");
    }

    #[test]
    fn scheme_of_reports_principal_type() {
        let mut e = Engine::new();
        e.exec("val id = fn x => x;").expect("defines");
        assert_eq!(
            e.scheme_of("id").expect("bound").to_string(),
            "∀t1::U. t1 -> t1"
        );
    }

    #[test]
    fn type_errors_are_static() {
        let mut e = Engine::new();
        // update on an immutable field must be rejected *before* running.
        e.exec("val r = [Name = \"Joe\"];").expect("defines");
        let err = e.eval_expr("update(r, Name, \"P\")").expect_err("rejected");
        assert!(err.is_type_error(), "got {err:?}");
    }

    #[test]
    fn parse_errors_reported() {
        let mut e = Engine::new();
        assert!(e.exec("val = 3").expect_err("bad").is_parse_error());
    }

    #[test]
    fn fun_single_recursive() {
        let mut e = Engine::new();
        e.exec("fun fact n = if n = 0 then 1 else n * fact (n - 1);")
            .expect("defines");
        assert_eq!(e.eval_to_string("fact 6").expect("runs"), "720");
    }

    #[test]
    fn fun_mutually_recursive() {
        let mut e = Engine::new();
        e.exec(
            "fun even n = if n = 0 then true else odd (n - 1) \
             and odd n = if n = 0 then false else even (n - 1);",
        )
        .expect("defines");
        assert_eq!(e.eval_to_string("even 10").expect("runs"), "true");
        assert_eq!(e.eval_to_string("odd 10").expect("runs"), "false");
    }

    #[test]
    fn fun_is_polymorphic_at_top_level() {
        let mut e = Engine::new();
        e.exec("fun twice f x = f (f x);").expect("defines");
        assert_eq!(
            e.eval_to_string("twice (fn n => n + 1) 0").expect("runs"),
            "2"
        );
        assert_eq!(
            e.eval_to_string("twice (fn s => s ^ \"!\") \"hi\"")
                .expect("runs"),
            "\"hi!!\""
        );
    }

    #[test]
    fn multi_param_fun_curries() {
        let mut e = Engine::new();
        e.exec("fun add3 a b c = a + b + c;").expect("defines");
        assert_eq!(e.eval_to_string("add3 1 2 3").expect("runs"), "6");
        assert_eq!(e.eval_to_string("(add3 1 2) 3").expect("runs"), "6");
    }

    #[test]
    fn top_level_class_group() {
        let mut e = Engine::new();
        e.exec(
            "val alice = IDView([Name = \"Alice\", Sex = \"female\"]);\n\
             class Staff = class {alice} end;",
        )
        .expect("defines");
        assert_eq!(
            e.eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)")
                .expect("runs"),
            "{\"Alice\"}"
        );
    }

    #[test]
    fn top_level_recursive_class_group() {
        let mut e = Engine::new();
        e.exec(
            "val a = IDView([Name = \"Anna\"]);\n\
             val b = IDView([Name = \"Ben\"]);\n\
             class A = class {a} include B as fn x => x where fn x => true end \
             and B = class {b} include A as fn x => x where fn x => true end;",
        )
        .expect("defines");
        assert_eq!(
            e.eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Name, o), s), A)")
                .expect("runs"),
            "{\"Anna\", \"Ben\"}"
        );
    }

    #[test]
    fn bare_expression_outcome() {
        let mut e = Engine::new();
        let out = e.exec("1 + 2;").expect("runs");
        match &out[0] {
            Outcome::Value { scheme, rendered } => {
                assert_eq!(scheme.to_string(), "int");
                assert_eq!(rendered, "3");
            }
            other => panic!("expected value, got {other:?}"),
        }
    }

    #[test]
    fn runtime_division_by_zero_is_runtime_error() {
        let mut e = Engine::new();
        let err = e.eval_expr("1 / 0").expect_err("fails");
        assert!(err.is_runtime_error());
    }

    #[test]
    fn ground_mutable_restriction_enforced_at_val() {
        let mut e = Engine::new();
        // A mutable field whose type stays polymorphic must be rejected.
        let err = e.exec("val r = [Cell := {}];").expect_err("rejected");
        assert!(err.is_type_error(), "got {err:?}");
    }

    #[test]
    fn insert_persists_across_statements() {
        let mut e = Engine::new();
        e.exec(
            "class Staff = class {} end;\n\
             insert(Staff, IDView([Name = \"Eve\"]));",
        )
        .expect("runs");
        assert_eq!(
            e.eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)")
                .expect("runs"),
            "{\"Eve\"}"
        );
    }

    #[test]
    fn group_destructuring_errors_instead_of_panicking() {
        // Regression: this path used `unreachable!` plus an unchecked
        // tuple-label index; a violated invariant must surface as
        // `Error::Internal`, never a panic.
        let not_a_tuple = Mono::int();
        let err = group_component_types(&not_a_tuple, 2, "class group").expect_err("non-record");
        assert!(err.is_internal(), "got {err:?}");
        assert!(err.to_string().contains("class group"), "got {err}");

        let missing_component = Mono::record_imm([(Label::tuple(1), Mono::int())]);
        let err =
            group_component_types(&missing_component, 2, "fun group").expect_err("missing #2");
        assert!(err.is_internal(), "got {err:?}");
        assert!(err.to_string().contains("component #2"), "got {err}");

        let ok = Mono::record_imm([
            (Label::tuple(1), Mono::int()),
            (Label::tuple(2), Mono::bool()),
        ]);
        let tys = group_component_types(&ok, 2, "class group").expect("tuple");
        assert_eq!(tys, vec![Mono::int(), Mono::bool()]);
    }

    #[test]
    fn name_epochs_track_only_the_names_a_declaration_binds() {
        let mut e = Engine::new();
        assert_eq!(e.name_epoch("map"), 0, "prelude names are epoch 0");
        e.exec("val x = 1;").expect("defines");
        e.exec("fun f a = a and g a = a;").expect("defines");
        assert_eq!(e.name_epoch("x"), 1);
        assert_eq!(e.name_epoch("f"), 1);
        assert_eq!(e.name_epoch("g"), 1);
        assert_eq!(e.name_epoch("map"), 0, "unbound names never move");
        e.exec("val x = 2;").expect("rebinds");
        assert_eq!(e.name_epoch("x"), 2);
        assert_eq!(e.name_epoch("f"), 1);
    }

    #[test]
    fn partial_group_failure_still_invalidates_dependents() {
        // Regression: binding a group redefines members one at a time, and
        // the per-member projection can fail mid-loop. The epoch bump used
        // to happen only *after* the loop, so a mid-loop failure left the
        // type environment mutated while prepared statements kept
        // validating — a stale statement could run against retyped
        // bindings. `define_group` must bump before the first mutation.
        let mut e = Engine::new();
        e.exec("fun f a = a and g a = a;").expect("defines");
        let p = e.prepare("f 1").expect("compiles");
        e.run(&p).expect("fresh runs");

        // Drive `define_group` with a malformed group value: two names and
        // types, but a 1-tuple value, so projecting `g`'s component fails
        // after `f` has already been redefined as an int.
        let one_tuple = Expr::tuple(std::iter::once(Expr::int(7)));
        let (_, v) = e.eval_ast(&one_tuple).expect("builds group value");
        let names = [Label::new("f"), Label::new("g")];
        let err = e
            .define_group(&names, vec![Mono::int(), Mono::int()], v, false)
            .expect_err("projection of #2 fails");
        assert!(err.is_runtime_error(), "got {err:?}");

        // `f` was redefined before the failure …
        assert_eq!(e.scheme_of("f").expect("bound").to_string(), "int");
        // … so the prepared application must be stale, not runnable.
        assert!(matches!(e.run(&p), Err(Error::StalePrepared)));
        // Both group members' epochs moved despite the partial application.
        assert_eq!(e.name_epoch("f"), 2);
        assert_eq!(e.name_epoch("g"), 2);
    }

    #[test]
    fn engine_with_fuel_halts_divergence() {
        let mut e = Engine::with_fuel(1_500);
        let err = e
            .eval_expr("let fun loop x = loop x in loop 0 end")
            .expect_err("halts");
        assert!(matches!(
            err,
            Error::Runtime(polyview_eval::RuntimeError::FuelExhausted)
        ));
    }
}

//! The engine: a persistent top-level session over the calculus.
//!
//! Each declaration is type-checked (inferring a principal scheme), then
//! evaluated; both the type environment and the value environment persist,
//! so later declarations see earlier ones. Static checking happens *before*
//! evaluation — the soundness theorem (Prop. 1) guarantees evaluation of a
//! well-typed program never raises a type-category error, and the engine's
//! tests assert exactly that.
//!
//! The engine is split into two phases (see [`crate::prepare`]):
//! *compilation* (parse + principal type inference, via
//! [`Engine::prepare`]) and *execution* ([`Engine::run`]). Expression entry
//! points ([`Engine::eval_expr`] / [`Engine::eval_to_string`]) route
//! through an LRU statement cache, so a repeated statement is compiled once
//! and then served with zero parser and zero inference work per call;
//! [`Engine::stats`] exposes counters that pin this down.

use crate::error::Error;
use crate::prepare::{EngineStats, Prepared, StmtCache, StmtKey, DEFAULT_STMT_CACHE_CAPACITY};
use polyview_eval::{Machine, Value};
use polyview_parser::{parse_expr, parse_program, Decl};
use polyview_syntax::visit::check_rec_class_scope;
use polyview_syntax::{sugar, ClassDef, Expr, Label, Mono, Name, Scheme};
use polyview_types::{builtins_sig, generalize, infer, Infer, TypeEnv};
use std::rc::Rc;

/// Result of executing one declaration.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Names bound by a `val`/`fun`/`class` declaration, with their
    /// principal schemes.
    Defined(Vec<(Name, Scheme)>),
    /// An evaluated bare expression.
    Value { scheme: Scheme, rendered: String },
}

/// A persistent session: parser + inference + evaluation with shared
/// top-level environments, and a statement cache serving the
/// compile-once/run-many path.
pub struct Engine {
    cx: Infer,
    tenv: TypeEnv,
    machine: Machine,
    stmts: StmtCache,
    stats: EngineStats,
    /// Bumped by every declaration (`val`/`fun`/`class`): prepared
    /// statements compiled under an older epoch are stale because the
    /// top-level type environment they were inferred against has changed.
    env_epoch: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    pub fn new() -> Self {
        Engine {
            cx: Infer::new(),
            tenv: builtins_sig::builtin_env(),
            machine: Machine::new(),
            stmts: StmtCache::new(DEFAULT_STMT_CACHE_CAPACITY),
            stats: EngineStats::default(),
            env_epoch: 0,
        }
    }

    /// Cap evaluation steps (useful when running untrusted or generated
    /// programs that may diverge through `fix`).
    pub fn with_fuel(fuel: u64) -> Self {
        let mut e = Engine::new();
        e.machine.fuel = Some(fuel);
        e
    }

    /// Execute a program: a sequence of declarations.
    pub fn exec(&mut self, src: &str) -> Result<Vec<Outcome>, Error> {
        self.stats.parses += 1;
        let decls = parse_program(src)?;
        let mut out = Vec::with_capacity(decls.len());
        for d in &decls {
            out.push(self.exec_decl(d)?);
        }
        Ok(out)
    }

    // ----- compile once / run many -----

    /// Compile a statement: parse it and infer its principal scheme. The
    /// returned [`Prepared`] can be executed any number of times with
    /// [`Engine::run`] without touching the parser or inference again.
    pub fn prepare(&mut self, src: &str) -> Result<Prepared, Error> {
        let ast = self.parse_counted(src)?;
        self.prepare_parsed(Some(src.to_string()), ast)
    }

    /// Compile a pre-built AST (no parsing at all): infer its principal
    /// scheme and package it for repeated execution. This is the path the
    /// [`crate::Database`] facade uses — operands are spliced as AST nodes,
    /// never as source text.
    pub fn prepare_expr(&mut self, ast: Expr) -> Result<Prepared, Error> {
        self.prepare_parsed(None, ast)
    }

    fn prepare_parsed(&mut self, src: Option<String>, ast: Expr) -> Result<Prepared, Error> {
        self.stats.inferences += 1;
        let scheme = self.cx.infer_scheme(&mut self.tenv, &ast)?;
        Ok(Prepared::new(src, Rc::new(ast), scheme, self.env_epoch))
    }

    /// Execute a prepared statement against the current store. No parsing,
    /// no inference: the cached AST is evaluated directly under the global
    /// environment. Fails with [`Error::StalePrepared`] if any declaration
    /// has been executed since the statement was prepared (re-`prepare` it;
    /// the internal statement cache does this automatically).
    pub fn run(&mut self, p: &Prepared) -> Result<Value, Error> {
        if p.env_epoch() != self.env_epoch {
            return Err(Error::StalePrepared);
        }
        Ok(self.machine.eval_global(p.ast())?)
    }

    /// [`Engine::run`], rendering the result.
    pub fn run_to_string(&mut self, p: &Prepared) -> Result<String, Error> {
        let v = self.run(p)?;
        Ok(self.machine.show(&v))
    }

    /// Execute a statement through the LRU statement cache: on a hit the
    /// cached compiled form runs directly; on a miss (or a stale entry)
    /// `build` compiles a fresh [`Prepared`], which is cached for next
    /// time.
    pub(crate) fn eval_cached(
        &mut self,
        key: StmtKey,
        build: impl FnOnce(&mut Self) -> Result<Prepared, Error>,
    ) -> Result<(Scheme, Value), Error> {
        if let Some(p) = self.stmts.get_valid(&key, self.env_epoch) {
            let ast = p.ast_rc();
            let scheme = p.scheme().clone();
            self.stats.stmt_cache_hits += 1;
            let v = self.machine.eval_global(&ast)?;
            return Ok((scheme, v));
        }
        self.stats.stmt_cache_misses += 1;
        let p = build(self)?;
        let scheme = p.scheme().clone();
        let v = self.machine.eval_global(p.ast())?;
        self.stmts.insert(key, p);
        Ok((scheme, v))
    }

    fn parse_counted(&mut self, src: &str) -> Result<Expr, Error> {
        self.stats.parses += 1;
        Ok(parse_expr(src)?)
    }

    /// Parse one complete expression to be spliced into a larger statement
    /// *as an AST node* (the [`crate::Database`] facade's operands).
    /// Trailing input is a parse error here — an operand can never smuggle
    /// in additional statements — and typing happens once, on the
    /// assembled statement.
    pub(crate) fn parse_operand(&mut self, src: &str) -> Result<Expr, Error> {
        self.parse_counted(src)
    }

    /// Pipeline counters: parses, inferences, statement-cache hits/misses.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of statements currently held compiled in the cache.
    pub fn stmt_cache_len(&self) -> usize {
        self.stmts.len()
    }

    /// Statement-cache capacity (number of distinct statements kept
    /// compiled).
    pub fn stmt_cache_capacity(&self) -> usize {
        self.stmts.capacity()
    }

    /// Resize the statement cache (0 disables caching — every call
    /// recompiles, the "cold" path the prepared bench compares against).
    pub fn set_stmt_cache_capacity(&mut self, capacity: usize) {
        self.stmts.set_capacity(capacity);
    }

    /// Drop every cached statement (they recompile on next use).
    pub fn clear_stmt_cache(&mut self) {
        self.stmts.clear();
    }

    /// The current declaration epoch (bumped by `val`/`fun`/`class`).
    pub fn env_epoch(&self) -> u64 {
        self.env_epoch
    }

    /// Type-check and evaluate a single expression. Served from the
    /// statement cache: repeating the same source performs no parsing and
    /// no inference.
    pub fn eval_expr(&mut self, src: &str) -> Result<(Scheme, Value), Error> {
        self.eval_cached(StmtKey::Src(src.to_string()), |eng| eng.prepare(src))
    }

    /// Evaluate an expression and render the result.
    pub fn eval_to_string(&mut self, src: &str) -> Result<String, Error> {
        let (_, v) = self.eval_expr(src)?;
        Ok(self.machine.show(&v))
    }

    /// Infer the principal scheme of an expression without evaluating it.
    pub fn infer_expr(&mut self, src: &str) -> Result<Scheme, Error> {
        let e = self.parse_counted(src)?;
        self.stats.inferences += 1;
        Ok(self.cx.infer_scheme(&mut self.tenv, &e)?)
    }

    /// Type-check and evaluate a pre-built AST (uncached; see
    /// [`Engine::prepare_expr`] for the compile-once path).
    pub fn eval_ast(&mut self, e: &Expr) -> Result<(Scheme, Value), Error> {
        self.stats.inferences += 1;
        let scheme = self.cx.infer_scheme(&mut self.tenv, e)?;
        let v = self.machine.eval(e)?;
        Ok((scheme, v))
    }

    /// Execute one declaration.
    pub fn exec_decl(&mut self, d: &Decl) -> Result<Outcome, Error> {
        match d {
            Decl::Val(name, e) => {
                self.stats.inferences += 1;
                let scheme = self.cx.infer_scheme(&mut self.tenv, e)?;
                self.cx.check_ground_mutables(&scheme.body)?;
                let v = self.machine.eval(e)?;
                self.tenv.define_global(name.clone(), scheme.clone());
                self.machine.define_global(name.clone(), v);
                self.env_epoch += 1;
                Ok(Outcome::Defined(vec![(name.clone(), scheme)]))
            }
            Decl::Fun(defs) => self.exec_fun(defs),
            Decl::Classes(binds) => self.exec_classes(binds),
            Decl::Expr(e) => {
                self.stats.inferences += 1;
                let scheme = self.cx.infer_scheme(&mut self.tenv, e)?;
                let v = self.machine.eval(e)?;
                Ok(Outcome::Value {
                    scheme,
                    rendered: self.machine.show(&v),
                })
            }
        }
    }

    /// `fun f x = e and …`: encode with the paper's `fix`/record
    /// construction and bind each function. The group encoding is
    /// expansive, but its value is a closure for every definition, so
    /// top-level generalization is sound; we generalize explicitly.
    ///
    /// The whole group is elaborated **once**: one `fun_and` wrapper whose
    /// body is the tuple of the defined names, one inference run, one
    /// evaluation — then each binding's scheme is generalized from its
    /// component type and its closure projected from the group value. (The
    /// previous implementation re-elaborated the entire group per bound
    /// name, O(n²) in the group size.)
    fn exec_fun(&mut self, defs: &[(Name, Vec<Name>, Expr)]) -> Result<Outcome, Error> {
        let singles: Vec<(Label, Label, Expr)> = defs
            .iter()
            .map(|(f, params, e)| {
                let mut params = params.clone();
                let first = params.remove(0);
                let curried = params
                    .into_iter()
                    .rev()
                    .fold(e.clone(), |acc, p| Expr::lam(p, acc));
                (f.clone(), first, curried)
            })
            .collect();
        let names: Vec<Name> = defs.iter().map(|(f, _, _)| f.clone()).collect();
        let body = if names.len() == 1 {
            Expr::Var(names[0].clone())
        } else {
            Expr::tuple(names.iter().map(|n| Expr::Var(n.clone())))
        };
        let group = sugar::fun_and(singles, body);
        self.stats.inferences += 1;
        let t = infer::infer(&mut self.cx, &mut self.tenv, &group)?;
        let t = self.cx.resolve(&t);
        let v = self.machine.eval(&group)?;

        let mut bound = Vec::with_capacity(names.len());
        if names.len() == 1 {
            let scheme = self.cx.generalize(&self.tenv, &t);
            self.tenv.define_global(names[0].clone(), scheme.clone());
            self.machine.define_global(names[0].clone(), v);
            bound.push((names[0].clone(), scheme));
        } else {
            let tys = group_component_types(&t, names.len(), "fun group")?;
            for (i, (n, ti)) in names.iter().zip(tys).enumerate() {
                let scheme = self.cx.generalize(&self.tenv, &ti);
                let vi = self.machine.field_of(&v, Label::tuple(i + 1).as_str())?;
                self.tenv.define_global(n.clone(), scheme.clone());
                self.machine.define_global(n.clone(), vi);
                bound.push((n.clone(), scheme));
            }
        }
        self.env_epoch += 1;
        Ok(Outcome::Defined(bound))
    }

    /// `class A = class … end and …`: a top-level (possibly mutually
    /// recursive) class group, typed by the Fig. 6 rule and bound
    /// persistently.
    fn exec_classes(&mut self, binds: &[(Name, ClassDef)]) -> Result<Outcome, Error> {
        check_rec_class_scope(binds).map_err(polyview_types::TypeError::from)?;
        // Type the group by wrapping it as let-classes returning the tuple
        // of the bound class values; evaluating the same wrapper once
        // yields the values to destructure.
        let names: Vec<Name> = binds.iter().map(|(n, _)| n.clone()).collect();
        let body = if names.len() == 1 {
            Expr::Var(names[0].clone())
        } else {
            Expr::tuple(names.iter().map(|n| Expr::Var(n.clone())))
        };
        let wrapped = Expr::LetClasses(binds.to_vec(), Box::new(body));
        self.stats.inferences += 1;
        let t = infer::infer(&mut self.cx, &mut self.tenv, &wrapped)?;
        let t = self.cx.resolve(&t);
        let v = self.machine.eval(&wrapped)?;

        let mut bound = Vec::with_capacity(names.len());
        if names.len() == 1 {
            self.tenv
                .define_global(names[0].clone(), Scheme::mono(t.clone()));
            self.machine.define_global(names[0].clone(), v);
            bound.push((names[0].clone(), Scheme::mono(t)));
        } else {
            let tys = group_component_types(&t, names.len(), "class group")?;
            for (i, (n, ti)) in names.iter().zip(tys).enumerate() {
                let vi = self.machine.field_of(&v, Label::tuple(i + 1).as_str())?;
                self.tenv.define_global(n.clone(), Scheme::mono(ti.clone()));
                self.machine.define_global(n.clone(), vi);
                bound.push((n.clone(), Scheme::mono(ti)));
            }
        }
        self.env_epoch += 1;
        Ok(Outcome::Defined(bound))
    }

    /// The principal scheme of a bound name, if any, resolved through the
    /// current substitution (a top-level class may start with an
    /// unconstrained element type that later declarations pin down).
    pub fn scheme_of(&self, name: &str) -> Option<Scheme> {
        self.tenv.lookup(&Label::new(name)).map(|s| Scheme {
            binders: s.binders.clone(),
            body: self.cx.resolve(&s.body),
        })
    }

    /// The current value of a bound name, if any.
    pub fn value_of(&self, name: &str) -> Option<Value> {
        self.machine.global(&Label::new(name)).cloned()
    }

    /// Render any value using the engine's store.
    pub fn show(&self, v: &Value) -> String {
        self.machine.show(v)
    }

    /// Direct access to the evaluation machine (extents, stores, classes).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Direct access to the inference context (for tooling/tests).
    pub fn infer_ctx(&mut self) -> &mut Infer {
        &mut self.cx
    }

    /// Check whether an expression is generalizable (value restriction).
    pub fn is_value_form(e: &Expr) -> bool {
        generalize::is_nonexpansive(e)
    }

    /// Load the standard prelude ([`crate::prelude::PRELUDE`]): `count`,
    /// `sum`, `exists`, `forall`, `diff`, `subset`, `flatten`,
    /// `materialize`, `extent`, `csize`, ….
    pub fn load_prelude(&mut self) -> Result<(), Error> {
        self.exec(crate::prelude::PRELUDE)?;
        Ok(())
    }

    /// Translate an expression through the paper's Figs. 3/5 semantics into
    /// a pure core-language term (type-checked first). For the cached
    /// equivalent, use [`Engine::prepare`] + [`Prepared::translation`].
    pub fn translate_expr(&mut self, src: &str) -> Result<Expr, Error> {
        let e = self.parse_counted(src)?;
        self.stats.inferences += 1;
        self.cx.infer_scheme(&mut self.tenv, &e)?;
        Ok(polyview_trans::translate(&e))
    }
}

/// Destructure the resolved type of a declaration-group wrapper (`fun … and
/// …` / `class … and …` with a tuple body) into its component types. The
/// wrapper is constructed to type as an n-tuple, so anything else is an
/// engine invariant violation — reported as [`Error::Internal`], never a
/// panic (this path used to `unreachable!` and index unchecked).
fn group_component_types(t: &Mono, n: usize, what: &str) -> Result<Vec<Mono>, Error> {
    let parts = match t {
        Mono::Record(fs) => fs,
        other => {
            return Err(Error::Internal(format!(
                "{what} wrapper must type as a tuple, got {other}"
            )))
        }
    };
    (1..=n)
        .map(|i| {
            parts
                .get(&Label::tuple(i))
                .map(|f| f.ty.clone())
                .ok_or_else(|| {
                    Error::Internal(format!("{what} wrapper type is missing component #{i}"))
                })
        })
        .collect()
}

/// Run a computation on a dedicated thread with a large stack. The
/// tree-walking evaluator recurses with the interpreted program, so deeply
/// recursive user programs (e.g. non-tail `fix` loops over big inputs) can
/// exhaust the default stack; construct the [`Engine`] inside the closure
/// and size the stack to the workload.
///
/// ```
/// let out = polyview::engine::with_stack_size(256 * 1024 * 1024, || {
///     let mut e = polyview::Engine::new();
///     e.exec("fun sum n = if n = 0 then 0 else n + sum (n - 1);")
///         .expect("defines");
///     e.eval_to_string("sum 5000").expect("runs")
/// });
/// assert_eq!(out, "12502500");
/// ```
pub fn with_stack_size<R: Send>(stack_bytes: usize, f: impl FnOnce() -> R + Send) -> R {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(stack_bytes)
            .spawn_scoped(scope, f)
            .expect("spawn evaluation thread")
            .join()
            .expect("evaluation thread panicked")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_definition_persists() {
        let mut e = Engine::new();
        e.exec("val x = 41;").expect("defines");
        assert_eq!(e.eval_to_string("x + 1").expect("query"), "42");
    }

    #[test]
    fn scheme_of_reports_principal_type() {
        let mut e = Engine::new();
        e.exec("val id = fn x => x;").expect("defines");
        assert_eq!(
            e.scheme_of("id").expect("bound").to_string(),
            "∀t1::U. t1 -> t1"
        );
    }

    #[test]
    fn type_errors_are_static() {
        let mut e = Engine::new();
        // update on an immutable field must be rejected *before* running.
        e.exec("val r = [Name = \"Joe\"];").expect("defines");
        let err = e.eval_expr("update(r, Name, \"P\")").expect_err("rejected");
        assert!(err.is_type_error(), "got {err:?}");
    }

    #[test]
    fn parse_errors_reported() {
        let mut e = Engine::new();
        assert!(e.exec("val = 3").expect_err("bad").is_parse_error());
    }

    #[test]
    fn fun_single_recursive() {
        let mut e = Engine::new();
        e.exec("fun fact n = if n = 0 then 1 else n * fact (n - 1);")
            .expect("defines");
        assert_eq!(e.eval_to_string("fact 6").expect("runs"), "720");
    }

    #[test]
    fn fun_mutually_recursive() {
        let mut e = Engine::new();
        e.exec(
            "fun even n = if n = 0 then true else odd (n - 1) \
             and odd n = if n = 0 then false else even (n - 1);",
        )
        .expect("defines");
        assert_eq!(e.eval_to_string("even 10").expect("runs"), "true");
        assert_eq!(e.eval_to_string("odd 10").expect("runs"), "false");
    }

    #[test]
    fn fun_is_polymorphic_at_top_level() {
        let mut e = Engine::new();
        e.exec("fun twice f x = f (f x);").expect("defines");
        assert_eq!(
            e.eval_to_string("twice (fn n => n + 1) 0").expect("runs"),
            "2"
        );
        assert_eq!(
            e.eval_to_string("twice (fn s => s ^ \"!\") \"hi\"")
                .expect("runs"),
            "\"hi!!\""
        );
    }

    #[test]
    fn multi_param_fun_curries() {
        let mut e = Engine::new();
        e.exec("fun add3 a b c = a + b + c;").expect("defines");
        assert_eq!(e.eval_to_string("add3 1 2 3").expect("runs"), "6");
        assert_eq!(e.eval_to_string("(add3 1 2) 3").expect("runs"), "6");
    }

    #[test]
    fn top_level_class_group() {
        let mut e = Engine::new();
        e.exec(
            "val alice = IDView([Name = \"Alice\", Sex = \"female\"]);\n\
             class Staff = class {alice} end;",
        )
        .expect("defines");
        assert_eq!(
            e.eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)")
                .expect("runs"),
            "{\"Alice\"}"
        );
    }

    #[test]
    fn top_level_recursive_class_group() {
        let mut e = Engine::new();
        e.exec(
            "val a = IDView([Name = \"Anna\"]);\n\
             val b = IDView([Name = \"Ben\"]);\n\
             class A = class {a} include B as fn x => x where fn x => true end \
             and B = class {b} include A as fn x => x where fn x => true end;",
        )
        .expect("defines");
        assert_eq!(
            e.eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Name, o), s), A)")
                .expect("runs"),
            "{\"Anna\", \"Ben\"}"
        );
    }

    #[test]
    fn bare_expression_outcome() {
        let mut e = Engine::new();
        let out = e.exec("1 + 2;").expect("runs");
        match &out[0] {
            Outcome::Value { scheme, rendered } => {
                assert_eq!(scheme.to_string(), "int");
                assert_eq!(rendered, "3");
            }
            other => panic!("expected value, got {other:?}"),
        }
    }

    #[test]
    fn runtime_division_by_zero_is_runtime_error() {
        let mut e = Engine::new();
        let err = e.eval_expr("1 / 0").expect_err("fails");
        assert!(err.is_runtime_error());
    }

    #[test]
    fn ground_mutable_restriction_enforced_at_val() {
        let mut e = Engine::new();
        // A mutable field whose type stays polymorphic must be rejected.
        let err = e.exec("val r = [Cell := {}];").expect_err("rejected");
        assert!(err.is_type_error(), "got {err:?}");
    }

    #[test]
    fn insert_persists_across_statements() {
        let mut e = Engine::new();
        e.exec(
            "class Staff = class {} end;\n\
             insert(Staff, IDView([Name = \"Eve\"]));",
        )
        .expect("runs");
        assert_eq!(
            e.eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)")
                .expect("runs"),
            "{\"Eve\"}"
        );
    }

    #[test]
    fn group_destructuring_errors_instead_of_panicking() {
        // Regression: this path used `unreachable!` plus an unchecked
        // tuple-label index; a violated invariant must surface as
        // `Error::Internal`, never a panic.
        let not_a_tuple = Mono::int();
        let err = group_component_types(&not_a_tuple, 2, "class group").expect_err("non-record");
        assert!(err.is_internal(), "got {err:?}");
        assert!(err.to_string().contains("class group"), "got {err}");

        let missing_component = Mono::record_imm([(Label::tuple(1), Mono::int())]);
        let err =
            group_component_types(&missing_component, 2, "fun group").expect_err("missing #2");
        assert!(err.is_internal(), "got {err:?}");
        assert!(err.to_string().contains("component #2"), "got {err}");

        let ok = Mono::record_imm([
            (Label::tuple(1), Mono::int()),
            (Label::tuple(2), Mono::bool()),
        ]);
        let tys = group_component_types(&ok, 2, "class group").expect("tuple");
        assert_eq!(tys, vec![Mono::int(), Mono::bool()]);
    }

    #[test]
    fn engine_with_fuel_halts_divergence() {
        let mut e = Engine::with_fuel(1_500);
        let err = e
            .eval_expr("let fun loop x = loop x in loop 0 end")
            .expect_err("halts");
        assert!(matches!(
            err,
            Error::Runtime(polyview_eval::RuntimeError::FuelExhausted)
        ));
    }
}

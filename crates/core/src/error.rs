//! Unified error type for the engine pipeline.

use polyview_eval::RuntimeError;
use polyview_parser::ParseError;
use polyview_types::TypeError;
use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    Parse(ParseError),
    Type(TypeError),
    Runtime(RuntimeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Type(e) => write!(f, "type error: {e}"),
            Error::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Type(e) => Some(e),
            Error::Runtime(e) => Some(e),
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<TypeError> for Error {
    fn from(e: TypeError) -> Self {
        Error::Type(e)
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl Error {
    pub fn is_type_error(&self) -> bool {
        matches!(self, Error::Type(_))
    }
    pub fn is_parse_error(&self) -> bool {
        matches!(self, Error::Parse(_))
    }
    pub fn is_runtime_error(&self) -> bool {
        matches!(self, Error::Runtime(_))
    }
}

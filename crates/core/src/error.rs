//! Unified error type for the engine pipeline.

use polyview_eval::RuntimeError;
use polyview_parser::ParseError;
use polyview_syntax::wire::WireError;
use polyview_types::TypeError;
use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    Parse(ParseError),
    Type(TypeError),
    Runtime(RuntimeError),
    /// An engine snapshot failed to decode: corrupt or truncated bytes,
    /// version skew, or a snapshot written by a binary with different
    /// builtins ([`crate::Engine::from_snapshot`]).
    Snapshot(WireError),
    /// A [`crate::prepare::Prepared`] statement was run against an engine
    /// whose top-level bindings changed since it was compiled; re-prepare
    /// it (the engine's internal statement cache does this automatically).
    StalePrepared,
    /// An engine invariant was violated (e.g. a declaration-group wrapper
    /// typing to something other than a tuple). Never expected on any user
    /// input; reported instead of panicking.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Type(e) => write!(f, "type error: {e}"),
            Error::Runtime(e) => write!(f, "runtime error: {e}"),
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::StalePrepared => write!(
                f,
                "stale prepared statement: the engine's top-level bindings \
                 changed since it was prepared"
            ),
            Error::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Type(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::StalePrepared | Error::Internal(_) => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<TypeError> for Error {
    fn from(e: TypeError) -> Self {
        Error::Type(e)
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Snapshot(e)
    }
}

impl Error {
    pub fn is_type_error(&self) -> bool {
        matches!(self, Error::Type(_))
    }
    pub fn is_parse_error(&self) -> bool {
        matches!(self, Error::Parse(_))
    }
    pub fn is_runtime_error(&self) -> bool {
        matches!(self, Error::Runtime(_))
    }
    pub fn is_snapshot_error(&self) -> bool {
        matches!(self, Error::Snapshot(_))
    }
    pub fn is_stale_prepared(&self) -> bool {
        matches!(self, Error::StalePrepared)
    }
    pub fn is_internal(&self) -> bool {
        matches!(self, Error::Internal(_))
    }
}

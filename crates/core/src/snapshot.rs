//! The engine snapshot envelope: a versioned byte format for the complete
//! session state (DESIGN.md §17).
//!
//! Layering: the machine section — store, classes, globals, identity
//! counter, with object-identity sharing preserved — is produced by
//! [`polyview_eval::encode_machine`] and embedded here as one
//! length-prefixed byte string. The envelope adds everything else a
//! session is: the type side (globally bound schemes resolved through the
//! current substitution, the fresh-variable counter, and the kinds of the
//! variables left free in those schemes) and the engine bookkeeping
//! (declaration epochs, per-name epochs, compile-tier flag, index
//! signatures, alias edges). What is *not* serialized — the statement
//! cache, metrics, tracer — is a cold-start derivative of what is.
//!
//! Why resolved schemes: the substitution itself (`Infer`'s union-find
//! state) is session history, not session state. Resolving every scheme
//! body through it at encode time and carrying only the kinds of the
//! variables that remain free yields a closed description: restore needs
//! no substitution, only `ensure_vars_above` so freshly minted variables
//! never collide with restored ids.
//!
//! All maps are serialized in sorted order, so identical engine state
//! encodes to identical bytes (the machine section's node numbering is
//! traversal-order deterministic for the same reason).

use polyview_syntax::wire::{
    read_kind, read_label, read_name, read_scheme, write_kind, write_label, write_name,
    write_scheme, ByteReader, ByteWriter, WireError,
};
use polyview_syntax::{Kind, Label, Name, Scheme, TyVar};

/// First bytes of every engine snapshot (the machine section inside has
/// its own `PVMS` magic).
pub const ENGINE_MAGIC: [u8; 4] = *b"PVES";
/// Envelope version; decoding any other version is a loud error.
pub const ENGINE_VERSION: u32 = 1;

/// The flattened session state the envelope carries — the bridge between
/// [`crate::Engine`]'s private fields and the byte format. Vectors are
/// expected in sorted order (encode preserves whatever order it is
/// given; `Engine::snapshot` sorts).
pub(crate) struct EngineParts {
    /// The [`polyview_eval::encode_machine`] section, embedded opaquely.
    pub machine_bytes: Vec<u8>,
    /// The inference context's fresh-variable counter at snapshot time.
    pub next_var: u32,
    /// Kinds of type variables that remain free in the resolved global
    /// schemes (only non-`U` kinds; everything absent is universal).
    pub free_kinds: Vec<(TyVar, Kind)>,
    /// Every globally bound scheme, resolved through the substitution.
    pub globals: Vec<(Name, Scheme)>,
    pub env_epoch: u64,
    pub name_epochs: Vec<(Name, u64)>,
    pub compile_tier: bool,
    /// Index signatures of index-abstracted bindings (compile tier).
    pub index_sigs: Vec<(Name, Vec<(TyVar, Label)>)>,
    /// `val g = f;` alias edges (alias → source).
    pub alias_edges: Vec<(Name, Name)>,
}

pub(crate) fn encode_parts(p: &EngineParts) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for b in ENGINE_MAGIC {
        w.u8(b);
    }
    w.u32(ENGINE_VERSION);
    w.bytes(&p.machine_bytes);
    w.u32(p.next_var);
    w.usize(p.free_kinds.len());
    for (v, k) in &p.free_kinds {
        w.u32(*v);
        write_kind(&mut w, k);
    }
    w.usize(p.globals.len());
    for (n, s) in &p.globals {
        write_name(&mut w, n);
        write_scheme(&mut w, s);
    }
    w.u64(p.env_epoch);
    w.usize(p.name_epochs.len());
    for (n, e) in &p.name_epochs {
        write_name(&mut w, n);
        w.u64(*e);
    }
    w.bool(p.compile_tier);
    w.usize(p.index_sigs.len());
    for (n, sig) in &p.index_sigs {
        write_name(&mut w, n);
        w.usize(sig.len());
        for (v, l) in sig {
            w.u32(*v);
            write_label(&mut w, l);
        }
    }
    w.usize(p.alias_edges.len());
    for (alias, src) in &p.alias_edges {
        write_name(&mut w, alias);
        write_name(&mut w, src);
    }
    w.into_bytes()
}

pub(crate) fn decode_parts(bytes: &[u8]) -> Result<EngineParts, WireError> {
    let mut r = ByteReader::new(bytes);
    for expected in ENGINE_MAGIC {
        if r.u8("magic")? != expected {
            return Err(WireError::Malformed(
                "bad magic: not an engine snapshot".into(),
            ));
        }
    }
    let version = r.u32("version")?;
    if version != ENGINE_VERSION {
        return Err(WireError::Malformed(format!(
            "unsupported engine snapshot version {version} (this binary reads {ENGINE_VERSION})"
        )));
    }
    let machine_bytes = r.bytes("machine section")?.to_vec();
    let next_var = r.u32("type-variable counter")?;
    let n = r.count("free-kind count")?;
    let mut free_kinds = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.u32("kinded variable")?;
        free_kinds.push((v, read_kind(&mut r)?));
    }
    let n = r.count("global scheme count")?;
    let mut globals = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_name(&mut r)?;
        globals.push((name, read_scheme(&mut r)?));
    }
    let env_epoch = r.u64("env epoch")?;
    let n = r.count("name-epoch count")?;
    let mut name_epochs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_name(&mut r)?;
        name_epochs.push((name, r.u64("name epoch")?));
    }
    let compile_tier = r.bool("compile-tier flag")?;
    let n = r.count("index-signature count")?;
    let mut index_sigs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_name(&mut r)?;
        let m = r.count("index-signature arity")?;
        let mut sig = Vec::with_capacity(m);
        for _ in 0..m {
            let v = r.u32("index variable")?;
            sig.push((v, read_label(&mut r)?));
        }
        index_sigs.push((name, sig));
    }
    let n = r.count("alias-edge count")?;
    let mut alias_edges = Vec::with_capacity(n);
    for _ in 0..n {
        let alias = read_name(&mut r)?;
        alias_edges.push((alias, read_name(&mut r)?));
    }
    if !r.finished() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after engine snapshot",
            r.remaining()
        )));
    }
    Ok(EngineParts {
        machine_bytes,
        next_var,
        free_kinds,
        globals,
        env_epoch,
        name_epochs,
        compile_tier,
        index_sigs,
        alias_edges,
    })
}

#[cfg(test)]
mod tests {
    use crate::Engine;

    const SESSION: &str = r#"
        class Staff = class {} end;
        class Female = class {} include Staff as fn x => [Name = x.Name]
            where fn x => query(fn p => p.Sex = "female", x) end;
        insert(Staff, IDView([Name = "Ada", Sex = "female", Salary := 100]));
        insert(Staff, IDView([Name = "Joe", Sex = "male", Salary := 200]));
        val bob = IDView([Name = "Bob", Sex = "male", Salary := 50]);
        insert(Staff, bob);
        val total = fn s => hom(s, fn o => query(fn x => x.Salary, o), fn a => fn b => a + b, 0);
        fun pay s = cquery(total, s) and twice x = total(x) + total(x);
        val pay2 = pay;
    "#;

    const RENDER: &str = "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)";

    fn session_engine() -> Engine {
        let mut e = Engine::new();
        e.load_prelude().expect("prelude");
        e.exec(SESSION).expect("session executes");
        e
    }

    #[test]
    fn roundtrip_preserves_session_observations() {
        let mut orig = session_engine();
        let mut restored = Engine::from_snapshot(&orig.snapshot()).expect("decodes");
        assert_eq!(restored.env_epoch(), orig.env_epoch());
        for name in ["Staff", "Female", "total", "pay", "pay2", "map"] {
            assert_eq!(
                restored.name_epoch(name),
                orig.name_epoch(name),
                "epoch of {name}"
            );
            assert_eq!(
                restored.scheme_of(name).map(|s| s.to_string()),
                orig.scheme_of(name).map(|s| s.to_string()),
                "scheme of {name}"
            );
        }
        for probe in [
            RENDER,
            "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Female)",
            "pay(Staff)",
            "pay2(Staff)",
            "twice(cquery(fn s => s, Staff))",
        ] {
            assert_eq!(
                restored.eval_to_string(probe).expect("restored serves"),
                orig.eval_to_string(probe).expect("original serves"),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn roundtrip_then_tail_replay_matches_full_replay() {
        // Snapshot mid-log, replay a tail on the restored engine, and the
        // result must match replaying everything on a fresh engine — the
        // soundness statement the pool's bounded recovery leans on.
        let tail = [
            "insert(Staff, IDView([Name = \"Eva\", Sex = \"female\", Salary := 300]))",
            "val shout = fn n => concat n \"!\";",
            "val loud = cquery(fn s => map(fn o => shout(query(fn x => x.Name, o)), s), Staff)",
        ];
        let mut full = session_engine();
        let mut restored = Engine::from_snapshot(&session_engine().snapshot()).expect("decodes");
        for entry in tail {
            let a = full.exec(entry).map(|_| ()).map_err(|e| e.to_string());
            let b = restored.exec(entry).map(|_| ()).map_err(|e| e.to_string());
            assert_eq!(a, b, "entry {entry} agrees");
        }
        for probe in [RENDER, "loud", "pay(Staff)"] {
            assert_eq!(
                restored.eval_to_string(probe).expect("restored"),
                full.eval_to_string(probe).expect("full"),
                "probe {probe}"
            );
        }
        assert_eq!(restored.env_epoch(), full.env_epoch());
    }

    #[test]
    fn mutation_after_restore_stays_identity_correct() {
        // `bob` was inserted into Staff before the snapshot, so the global
        // binding and the class extent share one raw record. A restore
        // must preserve that sharing: mutating through the global must be
        // visible through the extent, exactly as on the original.
        let mut orig = session_engine();
        let mut restored = Engine::from_snapshot(&orig.snapshot()).expect("decodes");
        let probe = "cquery(fn s => map(fn o => query(fn x => x.Salary, o), s), Staff)";
        for eng in [&mut orig, &mut restored] {
            eng.exec("query(fn x => update(x, Salary, 777), bob)")
                .expect("mutate through the shared record");
        }
        let got = restored.eval_to_string(probe).expect("restored");
        assert_eq!(got, orig.eval_to_string(probe).expect("original"));
        assert!(
            got.contains("777"),
            "extent sees the mutation through the shared slot: {got}"
        );
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        assert_eq!(
            session_engine().snapshot(),
            session_engine().snapshot(),
            "identical sessions encode to identical bytes"
        );
    }

    #[test]
    fn corrupt_envelope_is_loud() {
        let e = session_engine();
        let good = e.snapshot();
        assert!(Engine::from_snapshot(b"nonsense").is_err());
        assert!(Engine::from_snapshot(&good[..good.len() / 2]).is_err());
        let mut trailing = good.clone();
        trailing.push(7);
        assert!(Engine::from_snapshot(&trailing).is_err());
        let mut skew = good;
        skew[4] = 0xEE;
        assert!(Engine::from_snapshot(&skew).is_err());
    }

    #[test]
    fn restored_engine_keeps_polymorphism() {
        // Restored schemes instantiate at fresh variables that never
        // collide with restored ids: the prelude's polymorphic `map` must
        // instantiate at two different element types post-restore, and
        // new polymorphic bindings must generalize and instantiate too.
        let mut restored = Engine::from_snapshot(&session_engine().snapshot()).expect("decodes");
        restored
            .exec(
                "val ints = map(fn x => x + 1, {1, 2});
                 val strs = map(fn s => concat s \"!\", {\"a\"});
                 val idf = fn x => x;
                 val p = idf(1);
                 val q = idf(\"s\");",
            )
            .expect("post-restore instantiations type-check");
        assert_eq!(restored.eval_to_string("ints").unwrap(), "{2, 3}");
        assert_eq!(restored.eval_to_string("pay(Staff)").unwrap(), "350");
    }
}

//! An object-database facade over the calculus: named classes, inserts,
//! deletes and queries — the workflow the paper's introduction motivates,
//! with every operation statically typed by the underlying engine.

use crate::classify::StmtClass;
use crate::engine::Engine;
use crate::error::Error;
use crate::prepare::StmtKey;
use polyview_eval::Value;
use polyview_syntax::{Expr, Scheme};

/// A thin OODB wrapper around [`Engine`].
///
/// # Reads take `&mut self` — by design, and why
///
/// Every facade method except [`Database::schema`] takes `&mut self`, even
/// [`Database::query`], which performs no declaration and no store effect.
/// This is deliberate: *logical* read/write classification is *not* the
/// same thing as Rust-level mutability here, and conflating them would bake
/// a false invariant into the API.
///
/// * Evaluating any statement drives the [`polyview_eval::Machine`], which
///   allocates fresh record/object identities in its slot store, burns
///   fuel, and bumps work counters — all `&mut` state, even for a pure
///   query.
/// * The statement cache ([`crate::prepare::StmtCache`]) updates recency on
///   every hit, and a miss inserts the fresh compilation.
///
/// Neither effect is observable by later statements (a query's allocations
/// are unreachable once it returns), which is exactly the distinction the
/// replicated serving layer (`crates/pool`) routes on. The **single source
/// of truth** for that distinction is [`crate::classify`]:
/// [`classify_program`](crate::classify::classify_program) — not the
/// mutability of these method receivers. [`Database::classify`] exposes it
/// on the facade.
///
/// ```
/// use polyview::Database;
///
/// let mut db = Database::new();
/// db.exec(
///     r#"
///     class Staff = class {} end;
///     insert(Staff, IDView([Name = "Alice", Age = 40, Sex = "female"]));
///     insert(Staff, IDView([Name = "Bob", Age = 50, Sex = "male"]));
///     "#,
/// )
/// .expect("setup");
/// assert_eq!(db.count("Staff").expect("count"), 2);
/// let names = db
///     .query("Staff", "fn s => map(fn o => query(fn x => x.Name, o), s)")
///     .expect("query");
/// assert_eq!(names, "{\"Alice\", \"Bob\"}");
/// ```
pub struct Database {
    engine: Engine,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    pub fn new() -> Self {
        Database {
            engine: Engine::new(),
        }
    }

    /// Run arbitrary declarations (class definitions, inserts, …).
    pub fn exec(&mut self, src: &str) -> Result<(), Error> {
        self.engine.exec(src)?;
        Ok(())
    }

    /// Evaluate an expression and render the result.
    pub fn eval(&mut self, src: &str) -> Result<String, Error> {
        self.engine.eval_to_string(src)
    }

    /// Run a `c-query` with the given set-level function source against a
    /// named class.
    ///
    /// The statement is assembled as an AST — `cquery(set_fn, class)` via
    /// [`Expr::cquery`] with the class name as a variable node — so neither
    /// operand is ever spliced into source text and reparsed: `set_fn` must
    /// be one complete expression on its own and the class name can never
    /// be reinterpreted as syntax. Compiled once per distinct
    /// `(class, set_fn)` pair, then served from the statement cache with
    /// zero parse/inference work per call.
    pub fn query(&mut self, class: &str, set_fn: &str) -> Result<String, Error> {
        let key = StmtKey::Query {
            class: class.to_string(),
            set_fn: set_fn.to_string(),
        };
        let (_, v) = self.engine.eval_cached(key, |eng| {
            let f = eng.parse_operand(set_fn)?;
            eng.prepare_expr(Expr::cquery(f, Expr::var(class)))
        })?;
        Ok(self.engine.show(&v))
    }

    /// Insert an object expression into a named class's own extent. Like
    /// [`Database::query`], built by AST construction: `obj` must parse as
    /// one complete expression (a trailing `")); delete(…"` is a parse
    /// error, not a second statement) and the class name is a variable
    /// node, never source text.
    pub fn insert(&mut self, class: &str, obj: &str) -> Result<(), Error> {
        let key = StmtKey::Insert {
            class: class.to_string(),
            obj: obj.to_string(),
        };
        self.engine.eval_cached(key, |eng| {
            let o = eng.parse_operand(obj)?;
            eng.prepare_expr(Expr::insert(Expr::var(class), o))
        })?;
        Ok(())
    }

    /// Delete an object expression from a named class's own extent (same
    /// AST-construction path as [`Database::insert`]).
    pub fn delete(&mut self, class: &str, obj: &str) -> Result<(), Error> {
        let key = StmtKey::Delete {
            class: class.to_string(),
            obj: obj.to_string(),
        };
        self.engine.eval_cached(key, |eng| {
            let o = eng.parse_operand(obj)?;
            eng.prepare_expr(Expr::delete(Expr::var(class), o))
        })?;
        Ok(())
    }

    /// Number of objects in the class's full (lazily materialized) extent.
    pub fn count(&mut self, class: &str) -> Result<usize, Error> {
        let v = self.class_value(class)?;
        let extent = self.engine.machine().extent_of(&v)?;
        Ok(extent.len())
    }

    /// Materialize the current views of every object in a class's extent
    /// and render them.
    pub fn dump(&mut self, class: &str) -> Result<Vec<String>, Error> {
        let v = self.class_value(class)?;
        let extent = self.engine.machine().extent_of(&v)?;
        let objs: Vec<Value> = extent.values().cloned().collect();
        let mut out = Vec::with_capacity(objs.len());
        for o in objs {
            let mat = self.engine.machine().materialize(&o)?;
            out.push(self.engine.show(&mat));
        }
        Ok(out)
    }

    /// The principal scheme of a bound name.
    pub fn schema(&self, name: &str) -> Option<Scheme> {
        self.engine.scheme_of(name)
    }

    /// Read/write classification of a statement
    /// ([`crate::classify::classify_program`]): [`Database::query`] is
    /// always a read; [`Database::insert`]/[`Database::delete`] and any
    /// `exec` that declares or mutates are writes. The serving pool routes
    /// on this, not on receiver mutability (see the type-level docs).
    pub fn classify(src: &str) -> Result<StmtClass, Error> {
        Ok(crate::classify::classify_program(src)?)
    }

    /// The underlying engine, for anything the facade doesn't cover.
    pub fn engine(&mut self) -> &mut Engine {
        &mut self.engine
    }

    fn class_value(&mut self, class: &str) -> Result<Value, Error> {
        self.engine.eval_expr(class).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staff_db() -> Database {
        let mut db = Database::new();
        db.exec(
            "class Staff = class {} end;\n\
             insert(Staff, IDView([Name = \"Alice\", Age = 40, Sex = \"female\"]));\n\
             insert(Staff, IDView([Name = \"Bob\", Age = 50, Sex = \"male\"]));",
        )
        .expect("setup");
        db
    }

    #[test]
    fn count_and_dump() {
        let mut db = staff_db();
        assert_eq!(db.count("Staff").expect("count"), 2);
        let rows = db.dump("Staff").expect("dump");
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.contains("Alice")));
    }

    #[test]
    fn query_facade() {
        let mut db = staff_db();
        let ages = db
            .query("Staff", "fn s => map(fn o => query(fn x => x.Age, o), s)")
            .expect("query");
        assert_eq!(ages, "{40, 50}");
    }

    #[test]
    fn delete_via_binding() {
        let mut db = Database::new();
        db.exec(
            "val alice = IDView([Name = \"Alice\"]);\n\
             class Staff = class {alice} end;",
        )
        .expect("setup");
        assert_eq!(db.count("Staff").expect("count"), 1);
        db.delete("Staff", "alice").expect("delete");
        assert_eq!(db.count("Staff").expect("count"), 0);
    }

    #[test]
    fn schema_lookup() {
        let db = staff_db();
        let s = db.schema("Staff").expect("bound");
        assert!(s.to_string().starts_with("class(["), "got {s}");
        assert!(db.schema("Nope").is_none());
    }

    #[test]
    fn view_class_through_facade() {
        let mut db = staff_db();
        db.exec(
            "class Female = class {} \
             include Staff as fn s => [Name = s.Name] \
             where fn s => query(fn x => x.Sex = \"female\", s) end;",
        )
        .expect("view class");
        assert_eq!(db.count("Female").expect("count"), 1);
        let rows = db.dump("Female").expect("dump");
        assert_eq!(rows, vec!["[Name = \"Alice\"]"]);
    }
}

//! `:explain` — a per-statement pipeline report.
//!
//! [`crate::Engine::explain`] compiles a statement *fresh* (even when the
//! statement cache holds it), timing each phase with the engine's tracer
//! clock and diffing the layer work counters around each phase, so the
//! report attributes parse/infer/translate/eval cost to exactly this
//! statement. The [`Explain`] value is plain data; `Display` renders the
//! REPL view.

use polyview_syntax::Scheme;

/// Per-statement pipeline report produced by [`crate::Engine::explain`].
///
/// Durations come from the engine's tracer clock (nanoseconds; inject a
/// [`polyview_obs::ManualClock`] for deterministic values). Work counters
/// are deltas across this statement only, not session totals.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The statement text.
    pub src: String,
    /// Principal scheme inferred for the statement.
    pub scheme: Scheme,
    /// Rendered result value.
    pub rendered: String,
    /// Whether the statement cache already held a valid compilation of this
    /// statement before the explain run (i.e. a plain
    /// [`eval_expr`](crate::Engine::eval_expr) would have hit).
    pub cached_before: bool,
    /// The statement's dependency snapshot: each free top-level name with
    /// the declaration epoch it was captured at. The cached compilation
    /// stays valid until one of these names is rebound; unrelated
    /// declarations leave it warm.
    pub deps: Vec<(String, u64)>,

    /// Parse-phase wall time.
    pub parse_ns: u64,
    /// Inference-phase wall time.
    pub infer_ns: u64,
    /// Lowering-phase (offset compilation) wall time. Zero when the engine's
    /// compile tier is off.
    pub lower_ns: u64,
    /// Translation-phase (Figs. 3/5) wall time.
    pub translate_ns: u64,
    /// Evaluation-phase wall time.
    pub eval_ns: u64,

    /// Tokens produced by the lexer.
    pub tokens: u64,
    /// AST nodes produced by the parser.
    pub nodes: u64,
    /// Unification steps spent on this statement.
    pub unify_steps: u64,
    /// Occurs checks spent on this statement.
    pub occurs_checks: u64,
    /// Record-kind merges spent on this statement.
    pub kind_merges: u64,
    /// Scheme instantiations spent on this statement.
    pub instantiations: u64,
    /// Field accesses and updates the compile tier resolved to constant
    /// integer offsets in this statement.
    pub offsets_resolved: u64,
    /// Field operations compiled against an in-scope index *parameter*
    /// (inside an index-abstracted polymorphic function body).
    pub index_params_used: u64,
    /// Polymorphic bindings rewritten into index-abstracted form.
    pub index_abstractions: u64,
    /// Field operations the compile tier could not resolve and left on the
    /// dynamic-lookup path (documented residue; zero on monomorphic code).
    pub dynamic_residue: u64,
    /// Record constructions compiled to layout-directed slot writes.
    pub records_lowered: u64,
    /// Per-operation offset/layout report rows (one per field op or record
    /// construction in the lowered statement), e.g. `dot .Name @0`.
    pub offset_rows: Vec<String>,
    /// AST nodes of the Figs. 3/5 translation of this statement.
    pub translated_size: u64,
    /// Evaluation steps spent running this statement.
    pub fuel_consumed: u64,
    /// Records constructed while running this statement.
    pub records_allocated: u64,
    /// Sets constructed while running this statement.
    pub sets_allocated: u64,
    /// Field operations the evaluator executed through a resolved offset
    /// while running this statement.
    pub field_offsets_resolved: u64,
    /// Field operations the evaluator fell back to dynamic label lookup for
    /// while running this statement.
    pub dyn_field_fallbacks: u64,
}

/// Render nanoseconds with a readable unit. Shared with the profile
/// report's table renderer.
pub(crate) fn ns(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{}ms", n / 1_000_000)
    } else if n >= 10_000 {
        format!("{}µs", n / 1_000)
    } else {
        format!("{n}ns")
    }
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "statement  {}", self.src)?;
        writeln!(f, "type       {}", self.scheme)?;
        writeln!(f, "result     {}", self.rendered)?;
        writeln!(
            f,
            "cache      {}",
            if self.cached_before {
                "hit (explain recompiled anyway)"
            } else {
                "miss (now cached)"
            }
        )?;
        if self.deps.is_empty() {
            writeln!(
                f,
                "deps       (none — cache entry pinned to the global epoch)"
            )?;
        } else {
            let rows: Vec<String> = self
                .deps
                .iter()
                .map(|(n, at)| format!("{n}@{at}"))
                .collect();
            writeln!(f, "deps       {}", rows.join(" "))?;
        }
        writeln!(
            f,
            "parse      {:>8}  tokens={} nodes={}",
            ns(self.parse_ns),
            self.tokens,
            self.nodes
        )?;
        writeln!(
            f,
            "infer      {:>8}  unify-steps={} occurs-checks={} kind-merges={} instantiations={}",
            ns(self.infer_ns),
            self.unify_steps,
            self.occurs_checks,
            self.kind_merges,
            self.instantiations
        )?;
        writeln!(
            f,
            "lower      {:>8}  offsets={} index-params={} abstractions={} static-residue={} records={}",
            ns(self.lower_ns),
            self.offsets_resolved,
            self.index_params_used,
            self.index_abstractions,
            self.dynamic_residue,
            self.records_lowered
        )?;
        if self.offset_rows.is_empty() {
            writeln!(f, "offsets    (no field operations in this statement)")?;
        } else {
            for row in &self.offset_rows {
                writeln!(f, "offsets    {row}")?;
            }
        }
        writeln!(
            f,
            "translate  {:>8}  core-nodes={}",
            ns(self.translate_ns),
            self.translated_size
        )?;
        write!(
            f,
            "eval       {:>8}  fuel={} records={} sets={} offsets={} runtime-fallbacks={}",
            ns(self.eval_ns),
            self.fuel_consumed,
            self.records_allocated,
            self.sets_allocated,
            self.field_offsets_resolved,
            self.dyn_field_fallbacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_picks_units() {
        assert_eq!(ns(0), "0ns");
        assert_eq!(ns(9_999), "9999ns");
        assert_eq!(ns(10_000), "10µs");
        assert_eq!(ns(2_000_000), "2000µs");
        assert_eq!(ns(10_000_000), "10ms");
    }

    #[test]
    fn display_mentions_every_phase() {
        let e = Explain {
            src: "1 + 2".into(),
            scheme: Scheme::mono(polyview_syntax::Mono::int()),
            rendered: "3".into(),
            cached_before: false,
            deps: vec![("plus".into(), 0)],
            parse_ns: 100,
            infer_ns: 200,
            lower_ns: 250,
            translate_ns: 300,
            eval_ns: 400,
            tokens: 3,
            nodes: 3,
            unify_steps: 2,
            occurs_checks: 1,
            kind_merges: 0,
            instantiations: 0,
            offsets_resolved: 1,
            index_params_used: 0,
            index_abstractions: 0,
            dynamic_residue: 0,
            records_lowered: 0,
            offset_rows: vec!["dot .Name @0".into()],
            translated_size: 3,
            fuel_consumed: 3,
            records_allocated: 0,
            sets_allocated: 0,
            field_offsets_resolved: 1,
            dyn_field_fallbacks: 0,
        };
        let s = e.to_string();
        for needle in [
            "parse",
            "infer",
            "lower",
            "offsets",
            "dot .Name @0",
            "translate",
            "eval",
            // The two fallback families must stay visually distinct:
            // lowering residue is a *static* fact, the eval counter a
            // *runtime* one (DESIGN.md §14).
            "static-residue",
            "runtime-fallbacks",
            "miss",
            "int",
            "plus@0",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }
}

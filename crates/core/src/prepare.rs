//! Compile once, run many: prepared statements and the engine's statement
//! cache.
//!
//! The paper's workflow (Section 4, Figs. 4–6) is a database session:
//! classes are defined once, then many `cquery`/`insert`/`delete`
//! operations are served against them. Compilation — parsing and principal
//! type inference — depends only on the statement text and the top-level
//! environments, so it can be done once per statement; execution depends on
//! the mutable store and must run per request. A [`Prepared`] value is the
//! boundary between the two phases: it owns the resolved AST (shared via
//! `Rc`, so repeated runs never copy it), the principal scheme inferred at
//! compile time, and — on demand — the Fig. 3/5 translation of the
//! statement into the pure core language.
//!
//! Validity: inference reads the engine's top-level type environment, so a
//! `Prepared` is tied to the bindings it was inferred against. Staleness is
//! tracked *per name* ([`Deps`]): at compile time the engine snapshots the
//! declaration epoch of every free top-level name of the statement, and the
//! statement is stale iff one of those names has been rebound since —
//! rebinding an *unrelated* `val` leaves every cached plan valid.
//! Expression-level effects (`insert`/`delete`/`update`) bump no epoch at
//! all — a prepared query stays valid across them and observes the current
//! extents — but rebinding a name a statement depends on does, and running
//! a stale statement reports [`crate::Error::StalePrepared`] rather than
//! risking an unsound execution against retyped bindings.
//!
//! Soundness of the per-name scheme: inference consults the top-level
//! environment only at the statement's free variables, and a name's scheme
//! (and value) can change only when a `val`/`fun`/`class` declaration
//! rebinds *that name*. Names never rebound — including every builtin and
//! prelude name — sit at epoch 0 forever, so a statement over a stable
//! schema never recompiles. The global declaration epoch is kept as a
//! defensive fallback ([`Deps::Global`]) for statements whose dependency
//! set cannot be computed.

use polyview_syntax::{Expr, Name, Scheme};
use polyview_trans::LowerStats;
use std::cell::OnceCell;
use std::collections::HashMap;
use std::rc::Rc;

/// What a [`Prepared`] statement's validity is checked against (DESIGN.md
/// §12).
#[derive(Clone, Debug)]
pub enum Deps {
    /// The statement's free top-level names, each paired with that name's
    /// declaration epoch snapshotted at compile time. The statement is
    /// stale iff some dependency's epoch has moved; rebinding a name the
    /// statement never mentions leaves it valid. A name absent from the
    /// engine's epoch map has implicit epoch 0 (never rebound) — this is
    /// how builtins and the prelude stay free.
    Names(Vec<(Name, u64)>),
    /// Defensive fallback: the global declaration epoch at compile time —
    /// stale after *any* declaration. The engine computes [`Deps::Names`]
    /// for every AST it prepares (the free-variable walk is total); this
    /// variant exists for callers that cannot produce a dependency set and
    /// preserves the pre-per-name semantics exactly.
    Global(u64),
}

impl Deps {
    /// Is a statement with these dependencies still valid under the given
    /// per-name epochs (`name_epochs`, missing key = 0) and global epoch?
    pub fn is_fresh(&self, name_epochs: &HashMap<Name, u64>, env_epoch: u64) -> bool {
        match self {
            Deps::Names(ds) => ds
                .iter()
                .all(|(n, at)| name_epochs.get(n).copied().unwrap_or(0) == *at),
            Deps::Global(at) => *at == env_epoch,
        }
    }
}

/// A statement compiled once (parsed + principal type inferred) by
/// [`crate::Engine::prepare`], executable many times with
/// [`crate::Engine::run`] without touching the parser or inference.
#[derive(Clone, Debug)]
pub struct Prepared {
    src: Option<String>,
    ast: Rc<Expr>,
    /// The executable form [`crate::Engine::run`] evaluates. With the
    /// compile tier on this is the offset-resolved lowering of `ast`
    /// (DESIGN.md §13); with the tier off it is `ast` itself.
    code: Rc<Expr>,
    /// Compile-tier work counters for this statement (all zero when the
    /// tier is off).
    lower: LowerStats,
    scheme: Scheme,
    deps: Deps,
    env_epoch: u64,
    translation: OnceCell<Rc<Expr>>,
}

impl Prepared {
    pub(crate) fn new(
        src: Option<String>,
        ast: Rc<Expr>,
        scheme: Scheme,
        deps: Deps,
        env_epoch: u64,
    ) -> Self {
        Prepared {
            src,
            code: ast.clone(),
            ast,
            lower: LowerStats::default(),
            scheme,
            deps,
            env_epoch,
            translation: OnceCell::new(),
        }
    }

    /// Attach the compile tier's output: the offset-resolved form that
    /// [`crate::Engine::run`] will evaluate instead of the source AST.
    pub(crate) fn set_code(&mut self, code: Rc<Expr>, lower: LowerStats) {
        self.code = code;
        self.lower = lower;
    }

    /// The source text this statement was prepared from, when it came from
    /// source rather than a pre-built AST.
    pub fn src(&self) -> Option<&str> {
        self.src.as_deref()
    }

    /// The compiled (resolved) AST, exactly as inferred — *not* the
    /// lowered form (see [`Prepared::code`]).
    pub fn ast(&self) -> &Expr {
        &self.ast
    }

    /// The executable form: the compile tier's offset-resolved lowering
    /// when the tier is on, the source AST otherwise.
    pub fn code(&self) -> &Expr {
        &self.code
    }

    /// Compile-tier work counters for this statement.
    pub fn lower_stats(&self) -> LowerStats {
        self.lower
    }

    /// The principal scheme inferred when the statement was prepared.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The dependency snapshot staleness is checked against: the
    /// statement's free top-level names with their compile-time epochs
    /// (or the global-epoch fallback).
    pub fn deps(&self) -> &Deps {
        &self.deps
    }

    /// Is this statement still valid under the given per-name epochs and
    /// global epoch? See [`Deps::is_fresh`].
    pub fn is_fresh(&self, name_epochs: &HashMap<Name, u64>, env_epoch: u64) -> bool {
        self.deps.is_fresh(name_epochs, env_epoch)
    }

    /// The global declaration epoch this statement was compiled under
    /// (observability; staleness is decided by [`Prepared::deps`]).
    pub fn env_epoch(&self) -> u64 {
        self.env_epoch
    }

    /// The paper's Figs. 3/5 translation of the statement into the pure
    /// core language, computed on first request and cached.
    pub fn translation(&self) -> &Expr {
        self.translation
            .get_or_init(|| Rc::new(polyview_trans::translate(&self.ast)))
    }

    /// Read/write classification of the compiled statement
    /// ([`crate::classify::classify_expr`]): a serving pool routes `Read`
    /// statements to any replica and sequences `Write` statements through
    /// its declaration log.
    pub fn class(&self) -> crate::classify::StmtClass {
        crate::classify::classify_expr(&self.ast)
    }
}

/// Key of a cached statement. `Src` is raw source text; the `Query` /
/// `Insert` / `Delete` variants are structured keys for the
/// [`crate::Database`] facade — keeping the operands separate means no
/// string splicing anywhere, so no two distinct (class, operand) pairs can
/// ever collide on one key (and no operand can reparse as extra syntax).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum StmtKey {
    Src(String),
    Query { class: String, set_fn: String },
    Insert { class: String, obj: String },
    Delete { class: String, obj: String },
}

/// Outcome of a statement-cache lookup. Distinguishing [`Stale`] from
/// [`Miss`] lets the engine count dependency invalidations separately from
/// cold misses.
///
/// [`Stale`]: CacheLookup::Stale
/// [`Miss`]: CacheLookup::Miss
#[derive(Clone, Debug)]
pub(crate) enum CacheLookup {
    /// Valid entry — every dependency at its compile-time epoch (the clone
    /// shares the AST).
    Hit(Prepared),
    /// Entry existed but a name it depends on has been rebound since it was
    /// compiled; it has been dropped and the caller must re-prepare.
    Stale,
    /// No entry.
    Miss,
}

/// An LRU statement cache: source key → [`Prepared`], with recency tracked
/// by a monotone tick and eviction of the least-recently-used entry at
/// capacity. Stale entries (a dependency was rebound since compilation) are
/// dropped on lookup so the caller transparently re-prepares.
pub(crate) struct StmtCache {
    capacity: usize,
    tick: u64,
    map: HashMap<StmtKey, (u64, Prepared)>,
}

/// Default number of distinct statements kept compiled per engine.
pub const DEFAULT_STMT_CACHE_CAPACITY: usize = 256;

impl StmtCache {
    pub fn new(capacity: usize) -> Self {
        StmtCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up a statement, bumping its recency. An entry whose dependency
    /// snapshot no longer matches the current per-name epochs (or the
    /// global epoch, for [`Deps::Global`] entries) is stale: it is dropped
    /// and the caller re-prepares.
    pub fn lookup(
        &mut self,
        key: &StmtKey,
        name_epochs: &HashMap<Name, u64>,
        env_epoch: u64,
    ) -> CacheLookup {
        match self.map.get_mut(key) {
            Some((tick, p)) if p.is_fresh(name_epochs, env_epoch) => {
                self.tick += 1;
                *tick = self.tick;
                CacheLookup::Hit(p.clone())
            }
            Some(_) => {
                self.map.remove(key);
                CacheLookup::Stale
            }
            None => CacheLookup::Miss,
        }
    }

    /// Is there a valid entry for `key` under the current epochs? Pure
    /// peek: does not bump recency and does not drop stale entries
    /// (`explain` uses it to report cache state without perturbing it).
    pub fn contains_valid(
        &self,
        key: &StmtKey,
        name_epochs: &HashMap<Name, u64>,
        env_epoch: u64,
    ) -> bool {
        self.map
            .get(key)
            .is_some_and(|(_, p)| p.is_fresh(name_epochs, env_epoch))
    }

    /// Insert (or refresh) an entry, evicting oldest-first to stay within
    /// capacity. Returns the number of entries evicted. At capacity 0
    /// nothing is stored (and nothing needs evicting).
    pub fn insert(&mut self, key: StmtKey, p: Prepared) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let evicted = if self.map.contains_key(&key) {
            0
        } else {
            self.evict_down_to(self.capacity - 1)
        };
        self.tick += 1;
        self.map.insert(key, (self.tick, p));
        evicted
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the capacity, evicting least-recently-used entries as needed
    /// (capacity 0 empties the cache entirely). Returns the number of
    /// entries evicted.
    pub fn set_capacity(&mut self, capacity: usize) -> usize {
        self.capacity = capacity;
        self.evict_down_to(capacity)
    }

    /// Evict least-recently-used entries until at most `target` remain.
    /// Deterministic: ticks are unique and monotone, so "oldest first" is a
    /// total order regardless of hash-map iteration order.
    fn evict_down_to(&mut self, target: usize) -> usize {
        let mut evicted = 0;
        while self.map.len() > target {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    self.map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// A snapshot of the engine's pipeline counters, assembled by
/// [`crate::Engine::stats`] from the metrics registry plus the per-layer
/// work counters ([`polyview_types::InferStats`],
/// [`polyview_eval::MachineStats`]).
///
/// `parses` and `inferences` count compilation work; a warmed statement
/// cache serves repeated statements with both counters flat — the property
/// the prepared-statement tests pin down. All counters are monotone until
/// [`crate::Engine::reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Calls into the parser (`parse_expr`/`parse_program`).
    pub parses: u64,
    /// Principal-type inference runs.
    pub inferences: u64,
    /// Statement-cache hits (execution without any compilation).
    pub stmt_cache_hits: u64,
    /// Statement-cache misses (statement compiled, then cached).
    pub stmt_cache_misses: u64,
    /// Entries evicted from the statement cache (LRU pressure or an
    /// explicit capacity shrink).
    pub stmt_cache_evictions: u64,
    /// Cache entries dropped because a name they depend on was rebound
    /// since compilation (per-name invalidation, DESIGN.md §12). Distinct
    /// from cold misses — a dep invalidation also counts as a miss, but a
    /// miss alone means the statement was never cached.
    pub stmt_cache_dep_invalidations: u64,
    /// Explicit [`crate::Engine::run`]s of a stale [`Prepared`] handle
    /// ([`crate::Error::StalePrepared`]): a dependency — or, for
    /// global-fallback statements, any declaration — moved underneath it.
    pub epoch_invalidations: u64,
    /// Tokens produced by the lexer (excluding end-of-input).
    pub tokens_lexed: u64,
    /// AST nodes produced by the parser.
    pub nodes_parsed: u64,
    /// Unification steps ([`polyview_types::InferStats::unify_steps`]).
    pub unify_steps: u64,
    /// Occurs checks ([`polyview_types::InferStats::occurs_checks`]).
    pub occurs_checks: u64,
    /// Record-kind merges ([`polyview_types::InferStats::kind_merges`]).
    pub kind_merges: u64,
    /// Scheme instantiations
    /// ([`polyview_types::InferStats::instantiations`]).
    pub instantiations: u64,
    /// Evaluation steps ([`polyview_eval::MachineStats::fuel_consumed`]).
    pub fuel_consumed: u64,
    /// Records constructed
    /// ([`polyview_eval::MachineStats::records_allocated`]).
    pub records_allocated: u64,
    /// Sets constructed ([`polyview_eval::MachineStats::sets_allocated`]).
    pub sets_allocated: u64,
    /// Field operations executed through a compile-time integer offset
    /// ([`polyview_eval::MachineStats::field_offsets_resolved`]).
    pub field_offsets_resolved: u64,
    /// Field operations that fell back to dynamic label lookup
    /// ([`polyview_eval::MachineStats::dyn_field_fallbacks`]). Zero on a
    /// fully lowered workload — the property `scripts/verify.sh` gates.
    pub dyn_field_fallbacks: u64,
}

impl EngineStats {
    /// Component-wise sum — how a replicated pool (`crates/pool`)
    /// aggregates the counters of N engines into one fleet-level snapshot.
    pub fn merged(self, other: EngineStats) -> EngineStats {
        EngineStats {
            parses: self.parses + other.parses,
            inferences: self.inferences + other.inferences,
            stmt_cache_hits: self.stmt_cache_hits + other.stmt_cache_hits,
            stmt_cache_misses: self.stmt_cache_misses + other.stmt_cache_misses,
            stmt_cache_evictions: self.stmt_cache_evictions + other.stmt_cache_evictions,
            stmt_cache_dep_invalidations: self.stmt_cache_dep_invalidations
                + other.stmt_cache_dep_invalidations,
            epoch_invalidations: self.epoch_invalidations + other.epoch_invalidations,
            tokens_lexed: self.tokens_lexed + other.tokens_lexed,
            nodes_parsed: self.nodes_parsed + other.nodes_parsed,
            unify_steps: self.unify_steps + other.unify_steps,
            occurs_checks: self.occurs_checks + other.occurs_checks,
            kind_merges: self.kind_merges + other.kind_merges,
            instantiations: self.instantiations + other.instantiations,
            fuel_consumed: self.fuel_consumed + other.fuel_consumed,
            records_allocated: self.records_allocated + other.records_allocated,
            sets_allocated: self.sets_allocated + other.sets_allocated,
            field_offsets_resolved: self.field_offsets_resolved + other.field_offsets_resolved,
            dyn_field_fallbacks: self.dyn_field_fallbacks + other.dyn_field_fallbacks,
        }
    }

    /// Engine-level health signals, in the serving layer's vocabulary
    /// (`crates/pool`'s `Health::Degraded { reasons }`): an empty list is
    /// "healthy". The engine has no queues or replicas, so its health is
    /// about the *compile tier holding up*:
    ///
    /// * runtime field fallbacks — the offset-resolved tier is being
    ///   bypassed at runtime (counted per operation, so this also catches
    ///   workloads the lowerer resolved but the machine re-dispatched);
    /// * statement-cache thrash — evictions outpacing hits means the
    ///   working set no longer fits and every statement recompiles.
    ///
    /// Surfaced by the REPL's `:health` command and available to any
    /// embedder serving a single engine.
    pub fn health_reasons(&self) -> Vec<String> {
        let mut reasons = Vec::new();
        if self.dyn_field_fallbacks > 0 {
            reasons.push(format!(
                "{} dynamic field fallbacks (offset tier bypassed at runtime)",
                self.dyn_field_fallbacks
            ));
        }
        if self.stmt_cache_evictions > 0 && self.stmt_cache_evictions >= self.stmt_cache_hits {
            reasons.push(format!(
                "statement cache thrashing (evictions {} >= hits {})",
                self.stmt_cache_evictions, self.stmt_cache_hits
            ));
        }
        reasons
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pipeline   parses={} inferences={} tokens={} nodes={}",
            self.parses, self.inferences, self.tokens_lexed, self.nodes_parsed
        )?;
        writeln!(
            f,
            "stmt-cache hits={} misses={} evictions={} dep-invalidations={} epoch-invalidations={}",
            self.stmt_cache_hits,
            self.stmt_cache_misses,
            self.stmt_cache_evictions,
            self.stmt_cache_dep_invalidations,
            self.epoch_invalidations
        )?;
        writeln!(
            f,
            "inference  unify-steps={} occurs-checks={} kind-merges={} instantiations={}",
            self.unify_steps, self.occurs_checks, self.kind_merges, self.instantiations
        )?;
        write!(
            f,
            "evaluator  fuel={} records={} sets={} offsets={} dyn-fallbacks={}",
            self.fuel_consumed,
            self.records_allocated,
            self.sets_allocated,
            self.field_offsets_resolved,
            self.dyn_field_fallbacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::{Expr, Label};

    /// A prepared statement on the pre-per-name global fallback: stale
    /// after any epoch move.
    fn prepared(epoch: u64) -> Prepared {
        Prepared::new(
            None,
            Rc::new(Expr::int(1)),
            Scheme::mono(polyview_syntax::Mono::int()),
            Deps::Global(epoch),
            epoch,
        )
    }

    fn prepared_deps(deps: Vec<(&str, u64)>) -> Prepared {
        Prepared::new(
            None,
            Rc::new(Expr::int(1)),
            Scheme::mono(polyview_syntax::Mono::int()),
            Deps::Names(deps.into_iter().map(|(n, e)| (Label::new(n), e)).collect()),
            0,
        )
    }

    fn epochs(entries: &[(&str, u64)]) -> HashMap<Name, u64> {
        entries.iter().map(|(n, e)| (Label::new(n), *e)).collect()
    }

    fn key(s: &str) -> StmtKey {
        StmtKey::Src(s.to_string())
    }

    fn hit(c: &mut StmtCache, s: &str, epoch: u64) -> bool {
        matches!(
            c.lookup(&key(s), &HashMap::new(), epoch),
            CacheLookup::Hit(_)
        )
    }

    #[test]
    fn health_reasons_flag_fallbacks_and_cache_thrash() {
        let healthy = EngineStats::default();
        assert!(healthy.health_reasons().is_empty());

        let fallbacks = EngineStats {
            dyn_field_fallbacks: 3,
            ..EngineStats::default()
        };
        let reasons = fallbacks.health_reasons();
        assert_eq!(reasons.len(), 1);
        assert!(reasons[0].contains("3 dynamic field fallbacks"));

        // Evictions at parity with hits: the cache is churning.
        let thrash = EngineStats {
            stmt_cache_evictions: 5,
            stmt_cache_hits: 5,
            ..EngineStats::default()
        };
        assert!(thrash.health_reasons()[0].contains("thrashing"));

        // Plenty of hits per eviction is normal steady-state, not thrash.
        let warm = EngineStats {
            stmt_cache_evictions: 5,
            stmt_cache_hits: 500,
            ..EngineStats::default()
        };
        assert!(warm.health_reasons().is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = StmtCache::new(2);
        assert_eq!(c.insert(key("a"), prepared(0)), 0);
        assert_eq!(c.insert(key("b"), prepared(0)), 0);
        assert!(hit(&mut c, "a", 0)); // refresh a
        assert_eq!(c.insert(key("c"), prepared(0)), 1); // evicts b
        assert_eq!(c.len(), 2);
        assert!(hit(&mut c, "a", 0));
        assert!(matches!(
            c.lookup(&key("b"), &HashMap::new(), 0),
            CacheLookup::Miss
        ));
        assert!(hit(&mut c, "c", 0));
    }

    #[test]
    fn stale_epoch_entries_report_stale_and_drop() {
        let mut c = StmtCache::new(4);
        c.insert(key("q"), prepared(0));
        assert!(matches!(
            c.lookup(&key("q"), &HashMap::new(), 1),
            CacheLookup::Stale
        ));
        assert_eq!(c.len(), 0);
        // Once dropped, a further lookup is a plain miss.
        assert!(matches!(
            c.lookup(&key("q"), &HashMap::new(), 1),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = StmtCache::new(0);
        assert_eq!(c.insert(key("q"), prepared(0)), 0);
        assert_eq!(c.len(), 0);
        assert!(matches!(
            c.lookup(&key("q"), &HashMap::new(), 0),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn set_capacity_to_zero_evicts_everything() {
        let mut c = StmtCache::new(4);
        for s in ["a", "b", "c"] {
            c.insert(key(s), prepared(0));
        }
        assert_eq!(c.set_capacity(0), 3);
        assert_eq!(c.len(), 0);
        // Inserts are now no-ops, and growing again re-enables caching.
        assert_eq!(c.insert(key("a"), prepared(0)), 0);
        assert_eq!(c.len(), 0);
        assert_eq!(c.set_capacity(2), 0);
        c.insert(key("a"), prepared(0));
        assert!(hit(&mut c, "a", 0));
    }

    #[test]
    fn set_capacity_shrinks_by_recency() {
        let mut c = StmtCache::new(8);
        for s in ["a", "b", "c", "d"] {
            c.insert(key(s), prepared(0));
        }
        assert!(hit(&mut c, "a", 0));
        assert_eq!(c.set_capacity(2), 2); // evicts b then c, oldest first
        assert_eq!(c.len(), 2);
        assert!(hit(&mut c, "a", 0));
        assert!(hit(&mut c, "d", 0));
        assert!(matches!(
            c.lookup(&key("b"), &HashMap::new(), 0),
            CacheLookup::Miss
        ));
        assert!(matches!(
            c.lookup(&key("c"), &HashMap::new(), 0),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn contains_valid_peeks_without_touching_recency() {
        let mut c = StmtCache::new(2);
        c.insert(key("a"), prepared(0));
        c.insert(key("b"), prepared(0));
        // Peeking at "a" must NOT refresh it: the next insert still evicts
        // it as the oldest entry.
        assert!(c.contains_valid(&key("a"), &HashMap::new(), 0));
        assert!(!c.contains_valid(&key("a"), &HashMap::new(), 1)); // wrong epoch
        assert!(!c.contains_valid(&key("z"), &HashMap::new(), 0));
        c.insert(key("c"), prepared(0));
        assert!(matches!(
            c.lookup(&key("a"), &HashMap::new(), 0),
            CacheLookup::Miss
        ));
        // The stale peek above must not have dropped the entry either.
        assert!(c.contains_valid(&key("b"), &HashMap::new(), 0));
    }

    #[test]
    fn name_deps_survive_unrelated_epoch_moves() {
        let mut c = StmtCache::new(4);
        c.insert(key("q"), prepared_deps(vec![("Employee", 0), ("map", 0)]));
        // An unrelated name was rebound (and the global epoch moved): the
        // entry stays a hit.
        let unrelated = epochs(&[("tick", 3)]);
        assert!(matches!(
            c.lookup(&key("q"), &unrelated, 3),
            CacheLookup::Hit(_)
        ));
        assert!(c.contains_valid(&key("q"), &unrelated, 3));
        // A dependency was rebound: stale, dropped.
        let related = epochs(&[("tick", 3), ("Employee", 1)]);
        assert!(!c.contains_valid(&key("q"), &related, 4));
        assert!(matches!(
            c.lookup(&key("q"), &related, 4),
            CacheLookup::Stale
        ));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn absent_names_have_implicit_epoch_zero() {
        // Builtins/prelude names never appear in the epoch map; a snapshot
        // taken at 0 matches forever, and a snapshot taken after a rebind
        // (epoch > 0) never matches an empty map.
        let fresh = prepared_deps(vec![("map", 0)]);
        assert!(fresh.is_fresh(&HashMap::new(), 99));
        let rebound = prepared_deps(vec![("map", 2)]);
        assert!(!rebound.is_fresh(&HashMap::new(), 99));
        assert!(rebound.is_fresh(&epochs(&[("map", 2)]), 99));
    }

    #[test]
    fn global_fallback_invalidates_on_any_epoch_move() {
        let p = prepared(7);
        assert!(matches!(p.deps(), Deps::Global(7)));
        // Per-name epochs are ignored by the fallback: only the global
        // epoch decides.
        assert!(p.is_fresh(&epochs(&[("x", 5)]), 7));
        assert!(!p.is_fresh(&HashMap::new(), 8));
    }

    #[test]
    fn structured_keys_do_not_collide() {
        // With format!-spliced keys these two would both be
        // "cquery(f, g, C)"; structured keys keep them distinct.
        let k1 = StmtKey::Query {
            class: "C".into(),
            set_fn: "f, g".into(),
        };
        let k2 = StmtKey::Query {
            class: "g, C".into(),
            set_fn: "f".into(),
        };
        assert_ne!(k1, k2);
    }
}

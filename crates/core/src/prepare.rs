//! Compile once, run many: prepared statements and the engine's statement
//! cache.
//!
//! The paper's workflow (Section 4, Figs. 4–6) is a database session:
//! classes are defined once, then many `cquery`/`insert`/`delete`
//! operations are served against them. Compilation — parsing and principal
//! type inference — depends only on the statement text and the top-level
//! environments, so it can be done once per statement; execution depends on
//! the mutable store and must run per request. A [`Prepared`] value is the
//! boundary between the two phases: it owns the resolved AST (shared via
//! `Rc`, so repeated runs never copy it), the principal scheme inferred at
//! compile time, and — on demand — the Fig. 3/5 translation of the
//! statement into the pure core language.
//!
//! Validity: inference reads the engine's top-level type environment, so a
//! `Prepared` is tied to the engine *declaration epoch* it was compiled
//! under. Expression-level effects (`insert`/`delete`/`update`) do not
//! change the epoch — a prepared query stays valid across them and observes
//! the current extents — but `val`/`fun`/`class` declarations do, and
//! running a stale statement reports [`crate::Error::StalePrepared`] rather
//! than risking an unsound execution against retyped bindings.

use polyview_syntax::{Expr, Scheme};
use std::cell::OnceCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A statement compiled once (parsed + principal type inferred) by
/// [`crate::Engine::prepare`], executable many times with
/// [`crate::Engine::run`] without touching the parser or inference.
#[derive(Clone, Debug)]
pub struct Prepared {
    src: Option<String>,
    ast: Rc<Expr>,
    scheme: Scheme,
    env_epoch: u64,
    translation: OnceCell<Rc<Expr>>,
}

impl Prepared {
    pub(crate) fn new(src: Option<String>, ast: Rc<Expr>, scheme: Scheme, env_epoch: u64) -> Self {
        Prepared {
            src,
            ast,
            scheme,
            env_epoch,
            translation: OnceCell::new(),
        }
    }

    /// The source text this statement was prepared from, when it came from
    /// source rather than a pre-built AST.
    pub fn src(&self) -> Option<&str> {
        self.src.as_deref()
    }

    /// The compiled (resolved) AST.
    pub fn ast(&self) -> &Expr {
        &self.ast
    }

    pub(crate) fn ast_rc(&self) -> Rc<Expr> {
        self.ast.clone()
    }

    /// The principal scheme inferred when the statement was prepared.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The engine declaration epoch this statement was compiled under.
    pub fn env_epoch(&self) -> u64 {
        self.env_epoch
    }

    /// The paper's Figs. 3/5 translation of the statement into the pure
    /// core language, computed on first request and cached.
    pub fn translation(&self) -> &Expr {
        self.translation
            .get_or_init(|| Rc::new(polyview_trans::translate(&self.ast)))
    }
}

/// Key of a cached statement. `Src` is raw source text; the `Query` /
/// `Insert` / `Delete` variants are structured keys for the
/// [`crate::Database`] facade — keeping the operands separate means no
/// string splicing anywhere, so no two distinct (class, operand) pairs can
/// ever collide on one key (and no operand can reparse as extra syntax).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum StmtKey {
    Src(String),
    Query { class: String, set_fn: String },
    Insert { class: String, obj: String },
    Delete { class: String, obj: String },
}

/// An LRU statement cache: source key → [`Prepared`], with recency tracked
/// by a monotone tick and eviction of the least-recently-used entry at
/// capacity. Stale entries (compiled under an older declaration epoch) are
/// dropped on lookup so the caller transparently re-prepares.
pub(crate) struct StmtCache {
    capacity: usize,
    tick: u64,
    map: HashMap<StmtKey, (u64, Prepared)>,
}

/// Default number of distinct statements kept compiled per engine.
pub const DEFAULT_STMT_CACHE_CAPACITY: usize = 256;

impl StmtCache {
    pub fn new(capacity: usize) -> Self {
        StmtCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up a statement compiled under `env_epoch`, bumping its recency.
    /// A hit under any other epoch is stale: the entry is evicted and the
    /// lookup misses.
    pub fn get_valid(&mut self, key: &StmtKey, env_epoch: u64) -> Option<&Prepared> {
        match self.map.get(key) {
            Some((_, p)) if p.env_epoch() == env_epoch => {
                self.tick += 1;
                let entry = self.map.get_mut(key).expect("entry just seen");
                entry.0 = self.tick;
                Some(&entry.1)
            }
            Some(_) => {
                self.map.remove(key);
                None
            }
            None => None,
        }
    }

    pub fn insert(&mut self, key: StmtKey, p: Prepared) {
        if self.capacity == 0 {
            return;
        }
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            }
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, p));
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the capacity, evicting least-recently-used entries as needed.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > capacity {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            } else {
                break;
            }
        }
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Counters for the engine's pipeline phases. `parses` and `inferences`
/// count compilation work; a warmed statement cache serves repeated
/// statements with both counters flat — the property the prepared-statement
/// tests pin down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Calls into the parser (`parse_expr`/`parse_program`).
    pub parses: u64,
    /// Principal-type inference runs.
    pub inferences: u64,
    /// Statement-cache hits (execution without any compilation).
    pub stmt_cache_hits: u64,
    /// Statement-cache misses (statement compiled, then cached).
    pub stmt_cache_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::Expr;

    fn prepared(epoch: u64) -> Prepared {
        Prepared::new(
            None,
            Rc::new(Expr::int(1)),
            Scheme::mono(polyview_syntax::Mono::int()),
            epoch,
        )
    }

    fn key(s: &str) -> StmtKey {
        StmtKey::Src(s.to_string())
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = StmtCache::new(2);
        c.insert(key("a"), prepared(0));
        c.insert(key("b"), prepared(0));
        assert!(c.get_valid(&key("a"), 0).is_some()); // refresh a
        c.insert(key("c"), prepared(0)); // evicts b
        assert_eq!(c.len(), 2);
        assert!(c.get_valid(&key("a"), 0).is_some());
        assert!(c.get_valid(&key("b"), 0).is_none());
        assert!(c.get_valid(&key("c"), 0).is_some());
    }

    #[test]
    fn stale_epoch_entries_miss_and_drop() {
        let mut c = StmtCache::new(4);
        c.insert(key("q"), prepared(0));
        assert!(c.get_valid(&key("q"), 1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = StmtCache::new(0);
        c.insert(key("q"), prepared(0));
        assert_eq!(c.len(), 0);
        assert!(c.get_valid(&key("q"), 0).is_none());
    }

    #[test]
    fn set_capacity_shrinks_by_recency() {
        let mut c = StmtCache::new(8);
        for s in ["a", "b", "c", "d"] {
            c.insert(key(s), prepared(0));
        }
        assert!(c.get_valid(&key("a"), 0).is_some());
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert!(c.get_valid(&key("a"), 0).is_some());
        assert!(c.get_valid(&key("d"), 0).is_some());
        assert!(c.get_valid(&key("b"), 0).is_none());
    }

    #[test]
    fn structured_keys_do_not_collide() {
        // With format!-spliced keys these two would both be
        // "cquery(f, g, C)"; structured keys keep them distinct.
        let k1 = StmtKey::Query {
            class: "C".into(),
            set_fn: "f, g".into(),
        };
        let k2 = StmtKey::Query {
            class: "g, C".into(),
            set_fn: "f".into(),
        };
        assert_ne!(k1, k2);
    }
}

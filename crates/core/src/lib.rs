//! `polyview` — a typed polymorphic calculus for views and object sharing.
//!
//! This crate is the public face of the workspace: a complete
//! implementation of Ohori & Tajima's PODS 1994 calculus, packaged as a
//! database programming language you can embed:
//!
//! ```
//! use polyview::Engine;
//!
//! let mut engine = Engine::new();
//! engine
//!     .exec(
//!         r#"
//!         val joe = IDView([Name = "Joe", BirthYear = 1955,
//!                           Salary := 2000, Bonus := 5000]);
//!         val joe_view = joe as fn x => [Name = x.Name,
//!                                        Age = this_year() - x.BirthYear,
//!                                        Income = x.Salary,
//!                                        Bonus := extract(x, Bonus)];
//!         "#,
//!     )
//!     .expect("definitions typecheck and evaluate");
//! let out = engine
//!     .eval_to_string("query(fn p => p.Income * 12 + p.Bonus, joe_view)")
//!     .expect("well-typed query");
//! assert_eq!(out, "29000");
//! ```
//!
//! The pieces:
//!
//! * [`Engine`] — parse → infer (principal types, Fig. 1/2/4/6) → evaluate,
//!   with persistent top-level environments and a compile-once/run-many
//!   prepared-statement pipeline ([`prepare`]).
//! * [`Database`] — an object-database facade over named classes, built on
//!   AST construction and cached prepared statements (no source splicing).
//! * Re-exports of the sub-crates for direct access to the AST
//!   ([`syntax`]), parser ([`parser`]), type system ([`types`]), evaluator
//!   ([`eval`]) and the paper's translation semantics ([`trans`]).

pub mod classify;
pub mod database;
pub mod engine;
pub mod error;
pub mod explain;
pub mod prelude;
pub mod prepare;
pub mod profile;
pub mod snapshot;

pub use classify::{classify_decl, classify_expr, classify_program, EffectSet, StmtClass};
pub use database::Database;
pub use engine::{Engine, Outcome, ReplaySummary};
pub use error::Error;
pub use explain::Explain;
pub use prepare::{EngineStats, Prepared};
pub use profile::ProfileReport;

pub use polyview_eval as eval;
pub use polyview_obs as obs;
pub use polyview_parser as parser;
pub use polyview_syntax as syntax;
pub use polyview_trans as trans;
pub use polyview_types as types;

pub use polyview_eval::{Machine, Profile, ProfileNode, Value};
pub use polyview_syntax::{Expr, Mono, Scheme};

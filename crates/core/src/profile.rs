//! `:profile` — a per-statement evaluation attribution report.
//!
//! [`crate::Engine::profile`] compiles a statement fresh and runs it with
//! the machine's attribution profiler attached (DESIGN.md §14). The
//! [`ProfileReport`] is plain data with three renderings:
//!
//! * `Display` — the REPL view: a hot-node table sorted by self time,
//!   followed by dynamic-fallback sites and view-recompute attribution;
//! * [`ProfileReport::to_json_lines`] — one JSON object per line, the
//!   same export discipline as the metrics registry (validated by
//!   `polyview_obs::jsonl` in the verify gate);
//! * [`ProfileReport::to_folded`] — folded stacks, the
//!   `inferno`/`flamegraph.pl` input format, without depending on either.

use crate::explain::ns;
use polyview_eval::{Profile, ProfileNode};
use polyview_obs::json_escape;
use polyview_syntax::Scheme;

/// How many hot-node rows the `Display` table shows.
const HOT_ROWS: usize = 12;

/// Per-statement profile report produced by [`crate::Engine::profile`].
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// The statement text.
    pub src: String,
    /// Principal scheme inferred for the statement.
    pub scheme: Scheme,
    /// Rendered result value.
    pub rendered: String,
    /// Total profiled evaluation time (sum of root node totals; exact
    /// under an injected manual clock).
    pub eval_ns: u64,
    /// The attribution profile itself.
    pub profile: Profile,
    /// Class-id → bound-name pairs for rendering view-recompute rows
    /// (sorted, deduplicated by id).
    pub class_names: Vec<(usize, String)>,
}

impl ProfileReport {
    /// The bound name of a class, or `class#N` for one no global names.
    pub fn class_name(&self, id: usize) -> String {
        match self.class_names.iter().find(|(i, _)| *i == id) {
            Some((_, n)) => n.clone(),
            None => format!("class#{id}"),
        }
    }

    /// Render as JSON lines: `profile.node` (one per tree node, parents
    /// before children, with the ancestor path), `profile.fallback_site`,
    /// `profile.view_recompute`, and a closing `profile.summary`. Field
    /// order is fixed — goldens pin it — and strings go through the same
    /// [`json_escape`] as the metrics registry.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let mut path: Vec<String> = Vec::new();
        fn node_lines(n: &ProfileNode, path: &mut Vec<String>, out: &mut String) {
            out.push_str("{\"kind\":\"profile.node\",\"path\":[");
            for (i, p) in path.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(p, out);
                out.push('"');
            }
            out.push_str("],\"node\":\"");
            json_escape(n.kind, out);
            out.push_str("\",\"span\":\"");
            json_escape(&n.span, out);
            out.push_str("\",\"hits\":");
            out.push_str(&n.hits.to_string());
            out.push_str(",\"total_ns\":");
            out.push_str(&n.total_ns.to_string());
            out.push_str(",\"self_ns\":");
            out.push_str(&n.self_ns.to_string());
            out.push_str(",\"env_hops\":");
            out.push_str(&n.env_hops.to_string());
            out.push_str("}\n");
            path.push(format!("{} {}", n.kind, n.span));
            for c in &n.children {
                node_lines(c, path, out);
            }
            path.pop();
        }
        for r in &self.profile.roots {
            node_lines(r, &mut path, &mut out);
        }
        for s in &self.profile.fallback_sites {
            out.push_str("{\"kind\":\"profile.fallback_site\",\"site\":\"");
            json_escape(s.kind, &mut out);
            out.push_str("\",\"span\":\"");
            json_escape(&s.span, &mut out);
            out.push_str("\",\"label\":\"");
            json_escape(&s.label, &mut out);
            out.push_str("\",\"count\":");
            out.push_str(&s.count.to_string());
            out.push_str("}\n");
        }
        for v in &self.profile.view_recomputes {
            out.push_str("{\"kind\":\"profile.view_recompute\",\"class\":\"");
            json_escape(&self.class_name(v.class), &mut out);
            out.push_str("\",\"class_id\":");
            out.push_str(&v.class.to_string());
            out.push_str(",\"recomputes\":");
            out.push_str(&v.recomputes.to_string());
            out.push_str(",\"cache_hits\":");
            out.push_str(&v.cache_hits.to_string());
            out.push_str(",\"rows_scanned\":");
            out.push_str(&v.rows_scanned.to_string());
            out.push_str(",\"invalidating_epoch\":");
            out.push_str(&v.invalidating_epoch.to_string());
            out.push_str("}\n");
        }
        out.push_str("{\"kind\":\"profile.summary\",\"statement\":\"");
        json_escape(&self.src, &mut out);
        out.push_str("\",\"eval_ns\":");
        out.push_str(&self.eval_ns.to_string());
        out.push_str(",\"nodes\":");
        out.push_str(&self.profile.node_count().to_string());
        out.push_str(",\"truncated_frames\":");
        out.push_str(&self.profile.truncated_frames.to_string());
        out.push_str("}\n");
        out
    }

    /// Folded stacks (see [`Profile::folded`]).
    pub fn to_folded(&self) -> String {
        self.profile.folded()
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "statement  {}", self.src)?;
        writeln!(f, "type       {}", self.scheme)?;
        writeln!(f, "result     {}", self.rendered)?;
        writeln!(
            f,
            "eval       {:>8}  nodes={} truncated-frames={}",
            ns(self.eval_ns),
            self.profile.node_count(),
            self.profile.truncated_frames
        )?;
        writeln!(f, "hot nodes  self        total       hits  kind      span")?;
        let hot = self.profile.hot_nodes();
        for h in hot.iter().take(HOT_ROWS) {
            writeln!(
                f,
                "           {:<10}  {:<10}  {:>4}  {:<8}  {}",
                ns(h.self_ns),
                ns(h.total_ns),
                h.hits,
                h.kind,
                h.span
            )?;
        }
        if hot.len() > HOT_ROWS {
            writeln!(f, "           … {} more", hot.len() - HOT_ROWS)?;
        }
        if self.profile.fallback_sites.is_empty() {
            writeln!(f, "fallbacks  (none — every field op ran offset-resolved)")?;
        } else {
            for s in &self.profile.fallback_sites {
                writeln!(
                    f,
                    "fallbacks  {:>4}× .{} at {} {}",
                    s.count, s.label, s.kind, s.span
                )?;
            }
        }
        if self.profile.view_recomputes.is_empty() {
            write!(f, "views      (no extent scans in this statement)")?;
        } else {
            for (i, v) in self.profile.view_recomputes.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                }
                write!(
                    f,
                    "views      {} recomputes={} cache-hits={} rows={} invalidated-by-epoch={}",
                    self.class_name(v.class),
                    v.recomputes,
                    v.cache_hits,
                    v.rows_scanned,
                    v.invalidating_epoch
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_eval::{FallbackSite, ViewRecompute};
    use polyview_obs::jsonl;

    fn report() -> ProfileReport {
        ProfileReport {
            src: "q \"x\"".into(),
            scheme: Scheme::mono(polyview_syntax::Mono::int()),
            rendered: "3".into(),
            eval_ns: 30,
            profile: Profile {
                roots: vec![ProfileNode {
                    kind: "app",
                    span: "q \"x\"".into(),
                    hits: 1,
                    total_ns: 30,
                    self_ns: 20,
                    env_hops: 0,
                    env_hops_max: 0,
                    children: vec![ProfileNode {
                        kind: "var",
                        span: "q".into(),
                        hits: 1,
                        total_ns: 10,
                        self_ns: 10,
                        env_hops: 2,
                        env_hops_max: 2,
                        children: vec![],
                    }],
                }],
                fallback_sites: vec![FallbackSite {
                    kind: "dot",
                    span: "x.Name".into(),
                    label: "Name".into(),
                    count: 4,
                }],
                view_recomputes: vec![ViewRecompute {
                    class: 0,
                    recomputes: 2,
                    cache_hits: 1,
                    rows_scanned: 10,
                    invalidating_epoch: 5,
                }],
                truncated_frames: 0,
            },
            class_names: vec![(0, "Staff".into())],
        }
    }

    #[test]
    fn json_lines_are_valid_and_key_order_is_pinned() {
        let r = report();
        let json = r.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2 + 1 + 1 + 1);
        let keys0 = jsonl::check_object_line(lines[0]).expect("valid node line");
        assert_eq!(
            keys0,
            ["kind", "path", "node", "span", "hits", "total_ns", "self_ns", "env_hops"]
        );
        // The child's path carries the parent frame, escaped.
        assert!(
            lines[1].contains("\"path\":[\"app q \\\"x\\\"\"]"),
            "{}",
            lines[1]
        );
        let keys2 = jsonl::check_object_line(lines[2]).expect("valid site line");
        assert_eq!(keys2, ["kind", "site", "span", "label", "count"]);
        let keys3 = jsonl::check_object_line(lines[3]).expect("valid view line");
        assert_eq!(
            keys3,
            [
                "kind",
                "class",
                "class_id",
                "recomputes",
                "cache_hits",
                "rows_scanned",
                "invalidating_epoch"
            ]
        );
        assert!(lines[3].contains("\"class\":\"Staff\""));
        let keys4 = jsonl::check_object_line(lines[4]).expect("valid summary line");
        assert_eq!(
            keys4,
            ["kind", "statement", "eval_ns", "nodes", "truncated_frames"]
        );
    }

    #[test]
    fn display_names_classes_and_sites() {
        let s = report().to_string();
        for needle in [
            "hot nodes",
            "app",
            "4× .Name",
            "Staff",
            "invalidated-by-epoch=5",
            "truncated-frames=0",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn unknown_class_renders_with_id() {
        let mut r = report();
        r.class_names.clear();
        assert_eq!(r.class_name(0), "class#0");
    }

    #[test]
    fn folded_delegates_to_profile() {
        let r = report();
        let folded = r.to_folded();
        assert_eq!(folded, "app:q \"x\" 20\napp:q \"x\";var:q 10\n");
    }
}

//! Wire protocol: one JSON object per `\n`-terminated line, both ways.
//!
//! The grammar is deliberately tiny (DESIGN.md §15). Requests:
//!
//! ```json
//! {"op":"hello","id":1,"session":7}
//! {"op":"stmt","id":2,"src":"cquery (fun p => p#Name) People;"}
//! {"op":"batch","id":3,"stmts":["insert People {Name=\"ada\"};","cquery (fun p => p#Name) People;"]}
//! {"op":"ping","id":4}
//! ```
//!
//! Responses always carry the request's `id` (when it could be decoded):
//!
//! ```json
//! {"id":2,"ok":"val it = ..."}
//! {"id":3,"results":[{"ok":"..."},{"err":"...","kind":"runtime"}]}
//! {"id":2,"busy":true}
//! {"id":2,"err":"unbound variable x","kind":"type"}
//! ```
//!
//! `kind` classifies errors with the same taxonomy as
//! [`polyview_pool::PoolError`] — `parse`, `type`, `runtime`, `stale`,
//! `internal`, `misrouted`, `lost` — plus `proto` for frames the server
//! could not decode (malformed JSON, unknown `op`, missing field,
//! oversized line) and `busy` for connection-limit rejections that
//! arrive before any frame is read.
//!
//! Encoding and decoding both go through [`polyview::obs::jsonl`]: the
//! server validates every inbound frame with the same recursive-descent
//! parser the verify gates use on outbound telemetry, so the wire stays
//! honest in both directions without an external JSON dependency.

use polyview::obs::jsonl::{self, JsonValue, ObjectBuilder};
use polyview_pool::PoolError;

/// Default bound on one wire frame (the line, excluding the newline).
/// Longer lines are discarded and answered with a `proto` error; the
/// connection stays open (§15 "malformed input is a value, not a
/// disconnect").
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    pub cmd: Command,
}

/// The request operations.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Pin this connection to an explicit session id (affinity +
    /// read-your-writes across connections that share it).
    Hello { session: u64 },
    /// One statement, auto-routed like [`polyview_pool::Pool::submit`].
    Stmt { src: String },
    /// N statements, one ticket: sequenced under a single log-lock hold
    /// and served in order on the session's replica.
    Batch { stmts: Vec<String> },
    /// Liveness probe; answered immediately with `{"id":N,"ok":"pong"}`.
    Ping,
}

/// Why a frame failed to decode. Carries the request id when the line
/// was well-formed enough to yield one, so the error response can still
/// be correlated.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameError {
    pub id: Option<u64>,
    pub message: String,
}

impl FrameError {
    fn new(id: Option<u64>, message: impl Into<String>) -> FrameError {
        FrameError {
            id,
            message: message.into(),
        }
    }
}

/// Decode one request line into a [`Frame`].
pub fn decode_frame(line: &str) -> Result<Frame, FrameError> {
    let members = jsonl::parse_object_line(line)
        .map_err(|e| FrameError::new(None, format!("malformed frame: {e}")))?;
    let id = JsonValue::get(&members, "id")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| FrameError::new(None, "frame is missing an integer \"id\""))?;
    let op = JsonValue::get(&members, "op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| FrameError::new(Some(id), "frame is missing a string \"op\""))?;
    let cmd = match op {
        "hello" => {
            let session = JsonValue::get(&members, "session")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| {
                    FrameError::new(Some(id), "\"hello\" needs an integer \"session\"")
                })?;
            Command::Hello { session }
        }
        "stmt" => {
            let src = JsonValue::get(&members, "src")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| FrameError::new(Some(id), "\"stmt\" needs a string \"src\""))?;
            Command::Stmt {
                src: src.to_string(),
            }
        }
        "batch" => {
            let items = JsonValue::get(&members, "stmts")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| {
                    FrameError::new(Some(id), "\"batch\" needs a string array \"stmts\"")
                })?;
            let mut stmts = Vec::with_capacity(items.len());
            for item in items {
                let s = item.as_str().ok_or_else(|| {
                    FrameError::new(Some(id), "\"batch\" needs a string array \"stmts\"")
                })?;
                stmts.push(s.to_string());
            }
            if stmts.is_empty() {
                return Err(FrameError::new(
                    Some(id),
                    "\"batch\" must carry at least one statement",
                ));
            }
            Command::Batch { stmts }
        }
        "ping" => Command::Ping,
        other => return Err(FrameError::new(Some(id), format!("unknown op {other:?}"))),
    };
    Ok(Frame { id, cmd })
}

/// The `kind` string for a [`PoolError`] on the wire.
pub fn error_kind(e: &PoolError) -> &'static str {
    match e {
        PoolError::Parse(_) => "parse",
        PoolError::Type(_) => "type",
        PoolError::Runtime(_) => "runtime",
        PoolError::StalePrepared => "stale",
        PoolError::Internal(_) => "internal",
        PoolError::Misrouted { .. } => "misrouted",
        PoolError::WorkerLost { .. } => "lost",
    }
}

/// `{"id":N,"ok":"..."}`
pub fn ok_line(id: u64, value: &str) -> String {
    ObjectBuilder::new()
        .field_u64("id", id)
        .field_str("ok", value)
        .finish()
}

/// `{"id":N,"err":"...","kind":"..."}`; `id` omitted when the frame
/// never yielded one.
pub fn err_line(id: Option<u64>, kind: &str, message: &str) -> String {
    let b = ObjectBuilder::new();
    let b = match id {
        Some(id) => b.field_u64("id", id),
        None => b,
    };
    b.field_str("err", message).field_str("kind", kind).finish()
}

/// `{"id":N,"busy":true}` — admission control said no; retry later.
pub fn busy_line(id: Option<u64>) -> String {
    let b = ObjectBuilder::new();
    let b = match id {
        Some(id) => b.field_u64("id", id),
        None => b,
    };
    b.field_bool("busy", true).finish()
}

/// `{"id":N,"results":[...]}` — one entry per batch statement, in
/// submission order.
pub fn results_line(id: u64, results: &[Result<String, PoolError>]) -> String {
    let mut arr = String::from("[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        let entry = match r {
            Ok(v) => ObjectBuilder::new().field_str("ok", v).finish(),
            Err(e) => ObjectBuilder::new()
                .field_str("err", &e.to_string())
                .field_str("kind", error_kind(e))
                .finish(),
        };
        arr.push_str(&entry);
    }
    arr.push(']');
    ObjectBuilder::new()
        .field_u64("id", id)
        .field_raw("results", &arr)
        .finish()
}

/// A decoded response, as seen by [`crate::NetClient`].
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The echoed request id; absent only on pre-decode rejections
    /// (connection-limit busy, unparseable frame).
    pub id: Option<u64>,
    pub reply: Reply,
}

/// The response payloads. Batch entries render errors as
/// `(message, kind)` pairs since [`PoolError`] does not round-trip
/// through the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    Ok(String),
    Results(Vec<Result<String, (String, String)>>),
    Busy,
    Err { kind: String, message: String },
}

/// Decode one response line (client side).
pub fn decode_response(line: &str) -> Result<Response, FrameError> {
    let members = jsonl::parse_object_line(line)
        .map_err(|e| FrameError::new(None, format!("malformed response: {e}")))?;
    let id = JsonValue::get(&members, "id").and_then(JsonValue::as_u64);
    if let Some(v) = JsonValue::get(&members, "ok").and_then(JsonValue::as_str) {
        return Ok(Response {
            id,
            reply: Reply::Ok(v.to_string()),
        });
    }
    if JsonValue::get(&members, "busy").and_then(JsonValue::as_bool) == Some(true) {
        return Ok(Response {
            id,
            reply: Reply::Busy,
        });
    }
    if let Some(message) = JsonValue::get(&members, "err").and_then(JsonValue::as_str) {
        let kind = JsonValue::get(&members, "kind")
            .and_then(JsonValue::as_str)
            .unwrap_or("internal")
            .to_string();
        return Ok(Response {
            id,
            reply: Reply::Err {
                kind,
                message: message.to_string(),
            },
        });
    }
    if let Some(items) = JsonValue::get(&members, "results").and_then(JsonValue::as_array) {
        let mut results = Vec::with_capacity(items.len());
        for item in items {
            let entry = item
                .as_object()
                .ok_or_else(|| FrameError::new(id, "\"results\" entries must be objects"))?;
            if let Some(v) = JsonValue::get(entry, "ok").and_then(JsonValue::as_str) {
                results.push(Ok(v.to_string()));
            } else if let Some(m) = JsonValue::get(entry, "err").and_then(JsonValue::as_str) {
                let kind = JsonValue::get(entry, "kind")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("internal")
                    .to_string();
                results.push(Err((m.to_string(), kind)));
            } else {
                return Err(FrameError::new(
                    id,
                    "\"results\" entry has neither ok nor err",
                ));
            }
        }
        return Ok(Response {
            id,
            reply: Reply::Results(results),
        });
    }
    Err(FrameError::new(
        id,
        "response has no ok/results/busy/err field",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_decoder() {
        assert_eq!(
            decode_frame(r#"{"op":"hello","id":1,"session":7}"#).unwrap(),
            Frame {
                id: 1,
                cmd: Command::Hello { session: 7 }
            }
        );
        assert_eq!(
            decode_frame(r#"{"op":"stmt","id":2,"src":"query f Db;"}"#).unwrap(),
            Frame {
                id: 2,
                cmd: Command::Stmt {
                    src: "query f Db;".to_string()
                }
            }
        );
        assert_eq!(
            decode_frame(r#"{"id":3,"op":"batch","stmts":["a;","b;"]}"#).unwrap(),
            Frame {
                id: 3,
                cmd: Command::Batch {
                    stmts: vec!["a;".to_string(), "b;".to_string()]
                }
            }
        );
        assert_eq!(
            decode_frame(r#"{"op":"ping","id":4}"#).unwrap(),
            Frame {
                id: 4,
                cmd: Command::Ping
            }
        );
    }

    #[test]
    fn bad_frames_keep_the_id_when_they_can() {
        assert_eq!(decode_frame("nope").unwrap_err().id, None);
        assert_eq!(decode_frame(r#"{"op":"stmt"}"#).unwrap_err().id, None);
        assert_eq!(
            decode_frame(r#"{"op":"stmt","id":9}"#).unwrap_err().id,
            Some(9)
        );
        assert_eq!(
            decode_frame(r#"{"op":"warp","id":9}"#).unwrap_err().id,
            Some(9)
        );
        assert_eq!(
            decode_frame(r#"{"op":"batch","id":9,"stmts":[]}"#)
                .unwrap_err()
                .id,
            Some(9)
        );
        assert_eq!(
            decode_frame(r#"{"op":"batch","id":9,"stmts":[1]}"#)
                .unwrap_err()
                .id,
            Some(9)
        );
    }

    #[test]
    fn response_lines_decode_back() {
        let ok = decode_response(&ok_line(5, "val it = 3 : Int")).unwrap();
        assert_eq!(
            ok,
            Response {
                id: Some(5),
                reply: Reply::Ok("val it = 3 : Int".to_string())
            }
        );

        let busy = decode_response(&busy_line(Some(6))).unwrap();
        assert_eq!(
            busy,
            Response {
                id: Some(6),
                reply: Reply::Busy
            }
        );

        let err = decode_response(&err_line(None, "proto", "malformed frame: bad")).unwrap();
        assert_eq!(
            err,
            Response {
                id: None,
                reply: Reply::Err {
                    kind: "proto".to_string(),
                    message: "malformed frame: bad".to_string()
                }
            }
        );

        let line = results_line(
            7,
            &[
                Ok("val it = 1 : Int".to_string()),
                Err(PoolError::Runtime("boom".to_string())),
            ],
        );
        let resp = decode_response(&line).unwrap();
        assert_eq!(
            resp.reply,
            Reply::Results(vec![
                Ok("val it = 1 : Int".to_string()),
                Err(("boom".to_string(), "runtime".to_string())),
            ])
        );
    }

    #[test]
    fn every_encoded_line_is_valid_jsonl() {
        for line in [
            ok_line(1, "weird \"quotes\" and \\ slashes"),
            err_line(Some(2), "type", "line\nbreak"),
            err_line(None, "proto", "no id"),
            busy_line(Some(3)),
            busy_line(None),
            results_line(4, &[Ok("x".to_string()), Err(PoolError::StalePrepared)]),
        ] {
            jsonl::check_object_line(&line).expect("encoder emits valid JSON lines");
        }
    }
}

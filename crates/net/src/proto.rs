//! Wire protocol: one JSON object per `\n`-terminated line, both ways.
//!
//! The grammar is deliberately tiny (DESIGN.md §15). Requests:
//!
//! ```json
//! {"op":"hello","id":1,"session":7}
//! {"op":"stmt","id":2,"src":"cquery (fun p => p#Name) People;"}
//! {"op":"batch","id":3,"stmts":["insert People {Name=\"ada\"};","cquery (fun p => p#Name) People;"]}
//! {"op":"ping","id":4}
//! ```
//!
//! Responses always carry the request's `id` (when it could be decoded):
//!
//! ```json
//! {"id":2,"ok":"val it = ..."}
//! {"id":3,"results":[{"ok":"..."},{"err":"...","kind":"runtime"}]}
//! {"id":2,"busy":true}
//! {"id":2,"err":"unbound variable x","kind":"type"}
//! ```
//!
//! `kind` classifies errors with the same taxonomy as
//! [`polyview_pool::PoolError`] — `parse`, `type`, `runtime`, `stale`,
//! `internal`, `misrouted`, `lost` — plus `proto` for frames the server
//! could not decode (malformed JSON, unknown `op`, missing field,
//! oversized line) and `busy` for connection-limit rejections that
//! arrive before any frame is read.
//!
//! Encoding and decoding both go through [`polyview::obs::jsonl`]: the
//! server validates every inbound frame with the same recursive-descent
//! parser the verify gates use on outbound telemetry, so the wire stays
//! honest in both directions without an external JSON dependency.

use polyview::obs::jsonl::{self, JsonValue, ObjectBuilder};
use polyview_pool::PoolError;

/// Default bound on one wire frame (the line, excluding the newline).
/// Longer lines are discarded and answered with a `proto` error; the
/// connection stays open (§15 "malformed input is a value, not a
/// disconnect").
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    pub cmd: Command,
}

/// The request operations.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Pin this connection to an explicit session id (affinity +
    /// read-your-writes across connections that share it).
    Hello { session: u64 },
    /// One statement, auto-routed like [`polyview_pool::Pool::submit`].
    Stmt { src: String },
    /// N statements, one ticket: sequenced under a single log-lock hold
    /// and served in order on the session's replica.
    Batch { stmts: Vec<String> },
    /// Liveness probe; answered immediately with `{"id":N,"ok":"pong"}`.
    Ping,
    /// One windowed + cumulative introspection object
    /// (`{"id":N,"stats":{...}}`), answered immediately by the reader.
    Stats,
    /// The pool health verdict (`{"id":N,"health":"healthy",...}`).
    /// Answered as an immediate like `ping`, so a load balancer gets an
    /// answer even while every pool queue is full.
    Health,
    /// Start pushing a `stats` frame (`{"push":seq,"stats":{...}}`)
    /// every `interval_ms` on this connection until `unwatch` or close
    /// — the protocol's only server-initiated frames.
    Watch { interval_ms: u64 },
    /// Stop a `watch`; acked with `{"id":N,"ok":"unwatch"}`.
    Unwatch,
}

/// Why a frame failed to decode. Carries the request id when the line
/// was well-formed enough to yield one, so the error response can still
/// be correlated.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameError {
    pub id: Option<u64>,
    pub message: String,
}

impl FrameError {
    fn new(id: Option<u64>, message: impl Into<String>) -> FrameError {
        FrameError {
            id,
            message: message.into(),
        }
    }
}

/// Decode one request line into a [`Frame`].
pub fn decode_frame(line: &str) -> Result<Frame, FrameError> {
    let members = jsonl::parse_object_line(line)
        .map_err(|e| FrameError::new(None, format!("malformed frame: {e}")))?;
    let id = JsonValue::get(&members, "id")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| FrameError::new(None, "frame is missing an integer \"id\""))?;
    let op = JsonValue::get(&members, "op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| FrameError::new(Some(id), "frame is missing a string \"op\""))?;
    let cmd = match op {
        "hello" => {
            let session = JsonValue::get(&members, "session")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| {
                    FrameError::new(Some(id), "\"hello\" needs an integer \"session\"")
                })?;
            Command::Hello { session }
        }
        "stmt" => {
            let src = JsonValue::get(&members, "src")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| FrameError::new(Some(id), "\"stmt\" needs a string \"src\""))?;
            Command::Stmt {
                src: src.to_string(),
            }
        }
        "batch" => {
            let items = JsonValue::get(&members, "stmts")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| {
                    FrameError::new(Some(id), "\"batch\" needs a string array \"stmts\"")
                })?;
            let mut stmts = Vec::with_capacity(items.len());
            for item in items {
                let s = item.as_str().ok_or_else(|| {
                    FrameError::new(Some(id), "\"batch\" needs a string array \"stmts\"")
                })?;
                stmts.push(s.to_string());
            }
            if stmts.is_empty() {
                return Err(FrameError::new(
                    Some(id),
                    "\"batch\" must carry at least one statement",
                ));
            }
            Command::Batch { stmts }
        }
        "ping" => Command::Ping,
        "stats" => Command::Stats,
        "health" => Command::Health,
        "watch" => {
            let interval_ms = JsonValue::get(&members, "interval_ms")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| {
                    FrameError::new(Some(id), "\"watch\" needs an integer \"interval_ms\"")
                })?;
            if interval_ms == 0 {
                return Err(FrameError::new(
                    Some(id),
                    "\"watch\" needs a nonzero \"interval_ms\"",
                ));
            }
            Command::Watch { interval_ms }
        }
        "unwatch" => Command::Unwatch,
        other => return Err(FrameError::new(Some(id), format!("unknown op {other:?}"))),
    };
    Ok(Frame { id, cmd })
}

/// The `kind` string for a [`PoolError`] on the wire.
pub fn error_kind(e: &PoolError) -> &'static str {
    match e {
        PoolError::Parse(_) => "parse",
        PoolError::Type(_) => "type",
        PoolError::Runtime(_) => "runtime",
        PoolError::StalePrepared => "stale",
        PoolError::Internal(_) => "internal",
        PoolError::Misrouted { .. } => "misrouted",
        PoolError::WorkerLost { .. } => "lost",
    }
}

/// `{"id":N,"ok":"..."}`
pub fn ok_line(id: u64, value: &str) -> String {
    ObjectBuilder::new()
        .field_u64("id", id)
        .field_str("ok", value)
        .finish()
}

/// `{"id":N,"err":"...","kind":"..."}`; `id` omitted when the frame
/// never yielded one.
pub fn err_line(id: Option<u64>, kind: &str, message: &str) -> String {
    let b = ObjectBuilder::new();
    let b = match id {
        Some(id) => b.field_u64("id", id),
        None => b,
    };
    b.field_str("err", message).field_str("kind", kind).finish()
}

/// `{"id":N,"busy":true}` — admission control said no; retry later.
pub fn busy_line(id: Option<u64>) -> String {
    let b = ObjectBuilder::new();
    let b = match id {
        Some(id) => b.field_u64("id", id),
        None => b,
    };
    b.field_bool("busy", true).finish()
}

/// Render an `f64` as a JSON number. Non-finite values (which JSON
/// cannot carry) collapse to `0`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// `{"id":N,"stats":{...}}` — `stats_obj` must already be one valid
/// JSON object (the server builds it with [`jsonl::ObjectBuilder`]).
pub fn stats_line(id: u64, stats_obj: &str) -> String {
    ObjectBuilder::new()
        .field_u64("id", id)
        .field_raw("stats", stats_obj)
        .finish()
}

/// `{"push":seq,"stats":{...}}` — a server-initiated `watch` push.
/// Carries no `id`: nothing requested *this* frame, so `push` holds the
/// per-connection push sequence number instead.
pub fn push_line(seq: u64, stats_obj: &str) -> String {
    ObjectBuilder::new()
        .field_u64("push", seq)
        .field_raw("stats", stats_obj)
        .finish()
}

/// `{"id":N,"health":"healthy","reasons":[],...}` — the verdict plus
/// the observations it was folded from.
pub fn health_line(id: u64, report: &polyview_pool::HealthReport) -> String {
    ObjectBuilder::new()
        .field_u64("id", id)
        .field_str("health", report.health.as_str())
        .field_str_array("reasons", report.health.reasons())
        .field_u64("workers", report.workers as u64)
        .field_u64("log_len", report.log_len)
        .field_u64("max_replay_lag", report.max_replay_lag)
        .field_u64("max_queue_depth", report.max_queue_depth)
        .field_raw("busy_rate", &json_f64(report.busy_rate))
        .field_raw("error_rate", &json_f64(report.error_rate))
        .field_u64("window_span_ns", report.window_span_ns)
        .finish()
}

/// `{"id":N,"results":[...]}` — one entry per batch statement, in
/// submission order.
pub fn results_line(id: u64, results: &[Result<String, PoolError>]) -> String {
    let mut arr = String::from("[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        let entry = match r {
            Ok(v) => ObjectBuilder::new().field_str("ok", v).finish(),
            Err(e) => ObjectBuilder::new()
                .field_str("err", &e.to_string())
                .field_str("kind", error_kind(e))
                .finish(),
        };
        arr.push_str(&entry);
    }
    arr.push(']');
    ObjectBuilder::new()
        .field_u64("id", id)
        .field_raw("results", &arr)
        .finish()
}

/// A decoded response, as seen by [`crate::NetClient`].
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The echoed request id; absent only on pre-decode rejections
    /// (connection-limit busy, unparseable frame).
    pub id: Option<u64>,
    pub reply: Reply,
}

/// The response payloads. Batch entries render errors as
/// `(message, kind)` pairs since [`PoolError`] does not round-trip
/// through the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    Ok(String),
    Results(Vec<Result<String, (String, String)>>),
    Busy,
    Err {
        kind: String,
        message: String,
    },
    /// The decoded members of a `stats` response's object.
    Stats(Vec<(String, JsonValue)>),
    /// A `health` response: the verdict name and its reasons.
    Health {
        verdict: String,
        reasons: Vec<String>,
    },
    /// A server-initiated `watch` push (no request id; `seq` is the
    /// connection's push counter).
    Push {
        seq: u64,
        stats: Vec<(String, JsonValue)>,
    },
}

/// Decode one response line (client side).
pub fn decode_response(line: &str) -> Result<Response, FrameError> {
    let members = jsonl::parse_object_line(line)
        .map_err(|e| FrameError::new(None, format!("malformed response: {e}")))?;
    let id = JsonValue::get(&members, "id").and_then(JsonValue::as_u64);
    if let Some(v) = JsonValue::get(&members, "ok").and_then(JsonValue::as_str) {
        return Ok(Response {
            id,
            reply: Reply::Ok(v.to_string()),
        });
    }
    if JsonValue::get(&members, "busy").and_then(JsonValue::as_bool) == Some(true) {
        return Ok(Response {
            id,
            reply: Reply::Busy,
        });
    }
    if let Some(message) = JsonValue::get(&members, "err").and_then(JsonValue::as_str) {
        let kind = JsonValue::get(&members, "kind")
            .and_then(JsonValue::as_str)
            .unwrap_or("internal")
            .to_string();
        return Ok(Response {
            id,
            reply: Reply::Err {
                kind,
                message: message.to_string(),
            },
        });
    }
    if let Some(items) = JsonValue::get(&members, "results").and_then(JsonValue::as_array) {
        let mut results = Vec::with_capacity(items.len());
        for item in items {
            let entry = item
                .as_object()
                .ok_or_else(|| FrameError::new(id, "\"results\" entries must be objects"))?;
            if let Some(v) = JsonValue::get(entry, "ok").and_then(JsonValue::as_str) {
                results.push(Ok(v.to_string()));
            } else if let Some(m) = JsonValue::get(entry, "err").and_then(JsonValue::as_str) {
                let kind = JsonValue::get(entry, "kind")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("internal")
                    .to_string();
                results.push(Err((m.to_string(), kind)));
            } else {
                return Err(FrameError::new(
                    id,
                    "\"results\" entry has neither ok nor err",
                ));
            }
        }
        return Ok(Response {
            id,
            reply: Reply::Results(results),
        });
    }
    // `push` before `stats`: both frame shapes carry a "stats" member,
    // only pushes carry "push".
    if let Some(seq) = JsonValue::get(&members, "push").and_then(JsonValue::as_u64) {
        let stats = JsonValue::get(&members, "stats")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| FrameError::new(None, "push frame is missing a \"stats\" object"))?;
        return Ok(Response {
            id: None,
            reply: Reply::Push {
                seq,
                stats: stats.to_vec(),
            },
        });
    }
    if let Some(stats) = JsonValue::get(&members, "stats").and_then(JsonValue::as_object) {
        return Ok(Response {
            id,
            reply: Reply::Stats(stats.to_vec()),
        });
    }
    if let Some(verdict) = JsonValue::get(&members, "health").and_then(JsonValue::as_str) {
        let reasons = match JsonValue::get(&members, "reasons").and_then(JsonValue::as_array) {
            Some(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let s = item.as_str().ok_or_else(|| {
                        FrameError::new(id, "\"reasons\" entries must be strings")
                    })?;
                    out.push(s.to_string());
                }
                out
            }
            None => Vec::new(),
        };
        return Ok(Response {
            id,
            reply: Reply::Health {
                verdict: verdict.to_string(),
                reasons,
            },
        });
    }
    Err(FrameError::new(
        id,
        "response has no ok/results/busy/err/stats/health/push field",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_decoder() {
        assert_eq!(
            decode_frame(r#"{"op":"hello","id":1,"session":7}"#).unwrap(),
            Frame {
                id: 1,
                cmd: Command::Hello { session: 7 }
            }
        );
        assert_eq!(
            decode_frame(r#"{"op":"stmt","id":2,"src":"query f Db;"}"#).unwrap(),
            Frame {
                id: 2,
                cmd: Command::Stmt {
                    src: "query f Db;".to_string()
                }
            }
        );
        assert_eq!(
            decode_frame(r#"{"id":3,"op":"batch","stmts":["a;","b;"]}"#).unwrap(),
            Frame {
                id: 3,
                cmd: Command::Batch {
                    stmts: vec!["a;".to_string(), "b;".to_string()]
                }
            }
        );
        assert_eq!(
            decode_frame(r#"{"op":"ping","id":4}"#).unwrap(),
            Frame {
                id: 4,
                cmd: Command::Ping
            }
        );
    }

    #[test]
    fn bad_frames_keep_the_id_when_they_can() {
        assert_eq!(decode_frame("nope").unwrap_err().id, None);
        assert_eq!(decode_frame(r#"{"op":"stmt"}"#).unwrap_err().id, None);
        assert_eq!(
            decode_frame(r#"{"op":"stmt","id":9}"#).unwrap_err().id,
            Some(9)
        );
        assert_eq!(
            decode_frame(r#"{"op":"warp","id":9}"#).unwrap_err().id,
            Some(9)
        );
        assert_eq!(
            decode_frame(r#"{"op":"batch","id":9,"stmts":[]}"#)
                .unwrap_err()
                .id,
            Some(9)
        );
        assert_eq!(
            decode_frame(r#"{"op":"batch","id":9,"stmts":[1]}"#)
                .unwrap_err()
                .id,
            Some(9)
        );
    }

    #[test]
    fn response_lines_decode_back() {
        let ok = decode_response(&ok_line(5, "val it = 3 : Int")).unwrap();
        assert_eq!(
            ok,
            Response {
                id: Some(5),
                reply: Reply::Ok("val it = 3 : Int".to_string())
            }
        );

        let busy = decode_response(&busy_line(Some(6))).unwrap();
        assert_eq!(
            busy,
            Response {
                id: Some(6),
                reply: Reply::Busy
            }
        );

        let err = decode_response(&err_line(None, "proto", "malformed frame: bad")).unwrap();
        assert_eq!(
            err,
            Response {
                id: None,
                reply: Reply::Err {
                    kind: "proto".to_string(),
                    message: "malformed frame: bad".to_string()
                }
            }
        );

        let line = results_line(
            7,
            &[
                Ok("val it = 1 : Int".to_string()),
                Err(PoolError::Runtime("boom".to_string())),
            ],
        );
        let resp = decode_response(&line).unwrap();
        assert_eq!(
            resp.reply,
            Reply::Results(vec![
                Ok("val it = 1 : Int".to_string()),
                Err(("boom".to_string(), "runtime".to_string())),
            ])
        );
    }

    fn degraded_report() -> polyview_pool::HealthReport {
        polyview_pool::HealthReport {
            health: polyview_pool::Health::Degraded {
                reasons: vec!["worker 1 replay lag 9 >= 3".to_string()],
            },
            workers: 4,
            log_len: 17,
            max_replay_lag: 9,
            max_queue_depth: 2,
            busy_rate: 0.5,
            error_rate: 0.0,
            window_span_ns: 2_000_000_000,
        }
    }

    #[test]
    fn introspection_frames_decode() {
        assert_eq!(
            decode_frame(r#"{"op":"stats","id":5}"#).unwrap().cmd,
            Command::Stats
        );
        assert_eq!(
            decode_frame(r#"{"op":"health","id":6}"#).unwrap().cmd,
            Command::Health
        );
        assert_eq!(
            decode_frame(r#"{"op":"watch","id":7,"interval_ms":250}"#)
                .unwrap()
                .cmd,
            Command::Watch { interval_ms: 250 }
        );
        assert_eq!(
            decode_frame(r#"{"op":"unwatch","id":8}"#).unwrap().cmd,
            Command::Unwatch
        );
        // A zero interval would mean a busy-loop of pushes; refused.
        assert_eq!(
            decode_frame(r#"{"op":"watch","id":9,"interval_ms":0}"#)
                .unwrap_err()
                .id,
            Some(9)
        );
        assert_eq!(
            decode_frame(r#"{"op":"watch","id":9}"#).unwrap_err().id,
            Some(9)
        );
    }

    #[test]
    fn stats_health_and_push_lines_decode_back() {
        let obj = ObjectBuilder::new()
            .field_str("health", "healthy")
            .field_u64("log_len", 3)
            .finish();

        let stats = decode_response(&stats_line(11, &obj)).unwrap();
        assert_eq!(stats.id, Some(11));
        match stats.reply {
            Reply::Stats(members) => {
                assert_eq!(
                    JsonValue::get(&members, "log_len").and_then(JsonValue::as_u64),
                    Some(3)
                );
            }
            other => panic!("expected Reply::Stats, got {other:?}"),
        }

        let push = decode_response(&push_line(2, &obj)).unwrap();
        assert_eq!(push.id, None, "pushes answer no request");
        match push.reply {
            Reply::Push { seq, stats } => {
                assert_eq!(seq, 2);
                assert_eq!(
                    JsonValue::get(&stats, "health").and_then(JsonValue::as_str),
                    Some("healthy")
                );
            }
            other => panic!("expected Reply::Push, got {other:?}"),
        }

        let health = decode_response(&health_line(12, &degraded_report())).unwrap();
        assert_eq!(health.id, Some(12));
        assert_eq!(
            health.reply,
            Reply::Health {
                verdict: "degraded".to_string(),
                reasons: vec!["worker 1 replay lag 9 >= 3".to_string()],
            }
        );
    }

    #[test]
    fn every_encoded_line_is_valid_jsonl() {
        for line in [
            ok_line(1, "weird \"quotes\" and \\ slashes"),
            err_line(Some(2), "type", "line\nbreak"),
            err_line(None, "proto", "no id"),
            busy_line(Some(3)),
            busy_line(None),
            results_line(4, &[Ok("x".to_string()), Err(PoolError::StalePrepared)]),
            stats_line(5, r#"{"x":1}"#),
            push_line(6, r#"{"x":1}"#),
            health_line(7, &degraded_report()),
        ] {
            jsonl::check_object_line(&line).expect("encoder emits valid JSON lines");
        }
    }

    #[test]
    fn json_f64_stays_inside_json() {
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(5.25), "5.25");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }
}

//! Blocking client for the JSON-lines protocol.
//!
//! Two styles:
//!
//! * **Call** — [`NetClient::call`] / [`NetClient::call_batch`] send
//!   one request and wait for its response. Simple, one in flight.
//! * **Pipelined** — [`NetClient::send_stmt`] /
//!   [`NetClient::send_batch`] return immediately with the request id;
//!   pair with [`NetClient::recv`] later. The server answers
//!   pool-accepted requests in order, but `busy` rejections overtake,
//!   so pipelining callers must match on the echoed id.

use crate::proto::{self, Reply, Response};
use polyview::obs::jsonl::JsonValue;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server closed the connection.
    Closed,
    /// The server sent a line this client cannot decode.
    Proto(String),
    /// Admission control refused the request; retry later.
    Busy,
    /// The server answered with a structured error.
    Server { kind: String, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Proto(m) => write!(f, "protocol error: {m}"),
            ClientError::Busy => write!(f, "server busy"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One TCP connection to a [`crate::NetServer`].
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl NetClient {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(NetClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Send a raw line (no trailing newline). Public so tests can put
    /// arbitrary — including malformed — bytes on the wire.
    pub fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        Ok(())
    }

    /// Read the next raw response line, newline stripped.
    pub fn recv_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Read and decode the next response.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let line = self.recv_line()?;
        proto::decode_response(&line).map_err(|e| ClientError::Proto(e.message))
    }

    /// Pipelined single statement; returns the request id.
    pub fn send_stmt(&mut self, src: &str) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let line = polyview::obs::jsonl::ObjectBuilder::new()
            .field_str("op", "stmt")
            .field_u64("id", id)
            .field_str("src", src)
            .finish();
        self.send_line(&line)?;
        Ok(id)
    }

    /// Pipelined batch; returns the request id.
    pub fn send_batch(&mut self, stmts: &[&str]) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let line = polyview::obs::jsonl::ObjectBuilder::new()
            .field_str("op", "batch")
            .field_u64("id", id)
            .field_str_array("stmts", stmts)
            .finish();
        self.send_line(&line)?;
        Ok(id)
    }

    /// Pipelined ping; returns the request id.
    pub fn send_ping(&mut self) -> Result<u64, ClientError> {
        self.send_op("ping")
    }

    /// Pipelined `stats`; returns the request id.
    pub fn send_stats(&mut self) -> Result<u64, ClientError> {
        self.send_op("stats")
    }

    /// Pipelined `health`; returns the request id.
    pub fn send_health(&mut self) -> Result<u64, ClientError> {
        self.send_op("health")
    }

    fn send_op(&mut self, op: &str) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let line = polyview::obs::jsonl::ObjectBuilder::new()
            .field_str("op", op)
            .field_u64("id", id)
            .finish();
        self.send_line(&line)?;
        Ok(id)
    }

    /// Request the server's introspection object and wait for it:
    /// the decoded members of the `stats` object. Requires no
    /// pipelined requests outstanding (watch pushes are skipped).
    pub fn stats(&mut self) -> Result<Vec<(String, JsonValue)>, ClientError> {
        let id = self.send_stats()?;
        let resp = self.recv_matching(id)?;
        match resp.reply {
            Reply::Stats(members) => Ok(members),
            Reply::Busy => Err(ClientError::Busy),
            Reply::Err { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(ClientError::Proto(format!("expected stats, got {other:?}"))),
        }
    }

    /// Probe the server's health verdict: `(verdict, reasons)` where
    /// the verdict is `healthy`, `degraded`, or `unhealthy`. Answered
    /// as an immediate, so it works even when the pool is saturated.
    pub fn health(&mut self) -> Result<(String, Vec<String>), ClientError> {
        let id = self.send_health()?;
        let resp = self.recv_matching(id)?;
        match resp.reply {
            Reply::Health { verdict, reasons } => Ok((verdict, reasons)),
            Reply::Busy => Err(ClientError::Busy),
            Reply::Err { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(ClientError::Proto(format!(
                "expected health, got {other:?}"
            ))),
        }
    }

    /// Start server-pushed `stats` frames every `interval_ms` on this
    /// connection; waits for the ack. Pushes then arrive as
    /// [`Reply::Push`] from [`NetClient::recv`], interleaved with any
    /// other responses.
    pub fn watch(&mut self, interval_ms: u64) -> Result<(), ClientError> {
        let id = self.fresh_id();
        let line = polyview::obs::jsonl::ObjectBuilder::new()
            .field_str("op", "watch")
            .field_u64("id", id)
            .field_u64("interval_ms", interval_ms)
            .finish();
        self.send_line(&line)?;
        self.expect_ok(id).map(|_| ())
    }

    /// Stop watching; waits for the ack (pushes already in flight are
    /// skipped).
    pub fn unwatch(&mut self) -> Result<(), ClientError> {
        let id = self.send_op("unwatch")?;
        self.expect_ok(id).map(|_| ())
    }

    /// Receive the next response that answers a request (skipping any
    /// watch pushes), and require it to match `id`.
    fn recv_matching(&mut self, id: u64) -> Result<Response, ClientError> {
        loop {
            let resp = self.recv()?;
            if matches!(resp.reply, Reply::Push { .. }) {
                continue;
            }
            if resp.id != Some(id) {
                return Err(ClientError::Proto(format!(
                    "response id {:?} does not match request id {id}",
                    resp.id
                )));
            }
            return Ok(resp);
        }
    }

    /// Pin this connection to `session`; waits for the ack.
    pub fn hello(&mut self, session: u64) -> Result<(), ClientError> {
        let id = self.fresh_id();
        let line = polyview::obs::jsonl::ObjectBuilder::new()
            .field_str("op", "hello")
            .field_u64("id", id)
            .field_u64("session", session)
            .finish();
        self.send_line(&line)?;
        self.expect_ok(id).map(|_| ())
    }

    /// Send one statement and wait for its result. Requires no
    /// pipelined requests outstanding.
    pub fn call(&mut self, src: &str) -> Result<String, ClientError> {
        let id = self.send_stmt(src)?;
        self.expect_ok(id)
    }

    /// Send a batch and wait for its per-statement results
    /// (`Err((message, kind))` entries for failed statements).
    /// Requires no pipelined requests outstanding.
    #[allow(clippy::type_complexity)]
    pub fn call_batch(
        &mut self,
        stmts: &[&str],
    ) -> Result<Vec<Result<String, (String, String)>>, ClientError> {
        let id = self.send_batch(stmts)?;
        let resp = self.recv_matching(id)?;
        match resp.reply {
            Reply::Results(results) => Ok(results),
            Reply::Busy => Err(ClientError::Busy),
            Reply::Err { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(ClientError::Proto(format!(
                "expected results, got {other:?}"
            ))),
        }
    }

    fn expect_ok(&mut self, id: u64) -> Result<String, ClientError> {
        let resp = self.recv_matching(id)?;
        match resp.reply {
            Reply::Ok(v) => Ok(v),
            Reply::Busy => Err(ClientError::Busy),
            Reply::Err { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(ClientError::Proto(format!(
                "expected a single result, got {other:?}"
            ))),
        }
    }
}

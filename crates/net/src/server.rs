//! The TCP front door: blocking `std::net` threads around one
//! [`Pool`].
//!
//! # Threading model
//!
//! * One **accept** thread owns the listener. Per accepted socket it
//!   enforces the connection cap, stamps `net.accepted`, and spawns a
//!   reader.
//! * One **reader** thread per connection reads bounded lines, decodes
//!   frames, and submits to the pool under a brief mutex hold.
//!   Responses the reader can produce *immediately* — `ping`, `hello`,
//!   protocol errors, `busy` rejections — it writes itself.
//! * One **writer** thread per connection drains a channel of pool
//!   tickets **in submission order** and writes their responses. This
//!   is what makes the protocol pipelined: the reader never blocks on
//!   an engine evaluation, so a client may have many statements in
//!   flight, capped by [`NetConfig::max_in_flight`].
//!
//! The ordering contract follows: responses to pool-accepted requests
//! arrive in request order; immediate responses may overtake them.
//! Request ids disambiguate (DESIGN.md §15).
//!
//! # Drain
//!
//! [`NetServer::drain`] stops accepting, shuts down the read half of
//! every live socket (readers see EOF mid-pipeline, writers finish the
//! tickets already in their channels), joins every thread, and returns
//! the inner [`Pool`] so callers can inspect or keep using it. Nothing
//! accepted is dropped: a request that got a ticket gets its response
//! before its connection closes.

use crate::proto::{self, Command, DEFAULT_MAX_FRAME_BYTES};
use polyview::obs::{
    EventRecord, EventSink, HistogramSnapshot, SharedClock, SharedCounter, SharedGauge,
    SharedHistogram, SharedRegistry, SharedWallClock,
};
use polyview_pool::{BatchTicket, Pool, PoolConfig, Submit, Ticket};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration. Admission control is two-tier: a cap on open
/// connections (checked at accept) and a per-connection cap on
/// pipelined requests awaiting responses (checked at submit), on top
/// of the pool's own bounded queues.
#[derive(Clone)]
pub struct NetConfig {
    /// Configuration for the pool the server fronts; the server owns
    /// the pool it builds from this.
    pub pool: PoolConfig,
    /// Maximum simultaneously open connections. Excess connects get a
    /// single `{"busy":true}` line and are closed.
    pub max_conns: usize,
    /// Maximum pool-accepted requests a single connection may have
    /// awaiting responses. Excess frames get `{"id":N,"busy":true}`;
    /// the connection stays open.
    pub max_in_flight: usize,
    /// Longest accepted wire line in bytes (excluding the newline).
    pub max_frame_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            pool: PoolConfig::default(),
            max_conns: 64,
            max_in_flight: 32,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

impl NetConfig {
    pub fn pool(mut self, cfg: PoolConfig) -> Self {
        self.pool = cfg;
        self
    }

    pub fn max_conns(mut self, n: usize) -> Self {
        self.max_conns = n;
        self
    }

    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    pub fn max_frame_bytes(mut self, n: usize) -> Self {
        self.max_frame_bytes = n.max(2);
        self
    }
}

/// Server-side counters, backed by a [`SharedRegistry`] so
/// [`NetServer::metrics_json`] renders them alongside the pool's.
struct Metrics {
    registry: SharedRegistry,
    conns_open: SharedGauge,
    conns_accepted: SharedCounter,
    rejected_busy: SharedCounter,
    frames_decoded: SharedCounter,
    frames_invalid: SharedCounter,
    responses: SharedCounter,
    read_to_decode_ns: SharedHistogram,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = SharedRegistry::new();
        Metrics {
            conns_open: registry.gauge("net.conns_open"),
            conns_accepted: registry.counter("net.conns_accepted"),
            rejected_busy: registry.counter("net.rejected_busy"),
            frames_decoded: registry.counter("net.frames_decoded"),
            frames_invalid: registry.counter("net.frames_invalid"),
            responses: registry.counter("net.responses"),
            read_to_decode_ns: registry.histogram("net.read_to_decode_ns"),
            registry,
        }
    }
}

/// Point-in-time snapshot of the server's own counters (the pool's
/// live separately in [`polyview_pool::PoolStats`]).
#[derive(Clone, Debug)]
pub struct NetStats {
    /// Connections currently open.
    pub conns_open: u64,
    /// Connections ever accepted (excludes cap rejections).
    pub conns_accepted: u64,
    /// Requests refused by admission control: connection cap,
    /// in-flight cap, or a full pool queue.
    pub rejected_busy: u64,
    /// Frames decoded and dispatched.
    pub frames_decoded: u64,
    /// Lines that failed to decode (malformed JSON, bad shape,
    /// oversized).
    pub frames_invalid: u64,
    /// Response lines written.
    pub responses: u64,
    /// Socket-read to frame-decoded latency.
    pub read_to_decode: HistogramSnapshot,
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "net: {} open / {} accepted connections",
            self.conns_open, self.conns_accepted
        )?;
        writeln!(
            f,
            "     {} decoded, {} invalid, {} busy-rejected, {} responses",
            self.frames_decoded, self.frames_invalid, self.rejected_busy, self.responses
        )?;
        write!(
            f,
            "     read→decode ns: p50={} p95={} p99={} (n={})",
            self.read_to_decode.quantile(0.50),
            self.read_to_decode.quantile(0.95),
            self.read_to_decode.quantile(0.99),
            self.read_to_decode.count
        )
    }
}

/// Clock + sink pair for `net.*` trace events; present only when the
/// pool's telemetry is on, so the disabled path stays a no-op.
struct NetTelemetry {
    clock: Arc<dyn SharedClock>,
    sink: Arc<dyn EventSink>,
}

impl NetTelemetry {
    fn emit(&self, name: &str, trace_id: u64, start_ns: u64, dur_ns: u64, conn: u64) {
        self.sink.emit(&EventRecord {
            name: name.to_string(),
            trace_id,
            parent: None,
            start_ns,
            dur_ns,
            attrs: vec![("conn".to_string(), conn)],
        });
    }
}

/// Everything a connection's threads share with the server.
struct Shared {
    pool: Mutex<Pool>,
    metrics: Metrics,
    telemetry: Option<NetTelemetry>,
    /// Time source for the read→decode histogram. Aliases the pool's
    /// telemetry clock when telemetry is on (deterministic tests see
    /// manual time everywhere); otherwise a private wall clock.
    clock: Arc<dyn SharedClock>,
    max_in_flight: usize,
    max_frame_bytes: usize,
}

struct ConnHandle {
    /// Kept solely so drain can `Shutdown::Read` a live reader.
    stream: TcpStream,
    join: JoinHandle<()>,
}

/// The TCP front door. Construct with [`NetServer::bind`]; stop with
/// [`NetServer::drain`] (keep the pool) or [`NetServer::shutdown`]
/// (tear everything down).
pub struct NetServer {
    local_addr: SocketAddr,
    /// `Some` until [`NetServer::drain`] takes the pool out.
    shared: Option<Arc<Shared>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port), build the pool
    /// from `cfg.pool`, and start accepting.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let pool = Pool::new(cfg.pool.clone());
        let telemetry = if pool.telemetry_enabled() {
            Some(NetTelemetry {
                clock: pool.telemetry_clock(),
                sink: pool.event_sink(),
            })
        } else {
            None
        };
        let clock: Arc<dyn SharedClock> = match &telemetry {
            Some(t) => Arc::clone(&t.clock),
            None => Arc::new(SharedWallClock::new()),
        };
        let shared = Arc::new(Shared {
            pool: Mutex::new(pool),
            metrics: Metrics::new(),
            telemetry,
            clock,
            max_in_flight: cfg.max_in_flight.max(1),
            max_frame_bytes: cfg.max_frame_bytes.max(2),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnHandle>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let max_conns = cfg.max_conns;
            std::thread::Builder::new()
                .name("net-accept".to_string())
                .spawn(move || accept_loop(listener, shared, stop, conns, max_conns))?
        };
        Ok(NetServer {
            local_addr,
            shared: Some(shared),
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Run `f` against the pool under the server's mutex. This is the
    /// only pool access the server exposes while serving — handing out
    /// the lock, not the pool, keeps [`NetServer::drain`]'s single
    /// ownership intact. Tests use it to reach deterministic hooks
    /// like [`Pool::pause_worker`].
    pub fn with_pool<R>(&self, f: impl FnOnce(&mut Pool) -> R) -> R {
        let mut guard = lock(&self.shared().pool);
        f(&mut guard)
    }

    fn shared(&self) -> &Arc<Shared> {
        self.shared.as_ref().expect("server not drained")
    }

    /// Snapshot the server's own counters.
    pub fn stats(&self) -> NetStats {
        let m = &self.shared().metrics;
        NetStats {
            conns_open: m.conns_open.get(),
            conns_accepted: m.conns_accepted.get(),
            rejected_busy: m.rejected_busy.get(),
            frames_decoded: m.frames_decoded.get(),
            frames_invalid: m.frames_invalid.get(),
            responses: m.responses.get(),
            read_to_decode: m.read_to_decode_ns.snapshot(),
        }
    }

    /// `net.*` and pool metrics as JSON lines (one object per line,
    /// same shape as [`polyview_pool::Pool::metrics_json`]).
    pub fn metrics_json(&self) -> String {
        let mut out = self.shared().metrics.registry.to_json_lines();
        out.push_str(&self.with_pool(|p| p.metrics_json()));
        out
    }

    /// Graceful drain: stop accepting, let every in-flight request
    /// finish and flush its response, close all connections, and
    /// return the pool (its workers still running).
    pub fn drain(mut self) -> Pool {
        self.drain_threads();
        let shared = self.shared.take().expect("server not drained");
        match Arc::try_unwrap(shared) {
            Ok(s) => s.pool.into_inner().unwrap_or_else(|e| e.into_inner()),
            Err(_) => unreachable!("all connection threads joined; no pool clones remain"),
        }
    }

    /// Drain, then shut the pool down too.
    pub fn shutdown(self) {
        let mut pool = self.drain();
        let _ = pool.drain();
        pool.shutdown();
    }

    /// Stop accepting and join every thread. Idempotent.
    fn drain_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // The accept thread blocks in `listener.incoming()`; a
            // throwaway local connection wakes it so it can observe
            // the stop flag. If it already exited, the connect just
            // fails — fine either way.
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
        let handles: Vec<ConnHandle> = lock(&self.conns).drain(..).collect();
        for conn in &handles {
            // EOF for the reader without killing queued responses: the
            // write half stays open until the writer thread finishes.
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        for conn in handles {
            let _ = conn.join.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // `drain`/`shutdown` already joined everything; this makes a
        // plain drop equally safe (no detached threads holding the
        // pool).
        self.drain_threads();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
    max_conns: usize,
) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Reap finished connections so the cap counts live ones only.
        lock(&conns).retain(|c| !c.join.is_finished());
        if shared.metrics.conns_open.get() >= max_conns as u64 {
            shared.metrics.rejected_busy.inc();
            let mut line = proto::busy_line(None);
            line.push('\n');
            let _ = stream.write_all(line.as_bytes());
            continue; // dropping the stream closes it
        }
        let conn_id = next_conn;
        next_conn += 1;
        let reader_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.metrics.conns_accepted.inc();
        shared.metrics.conns_open.add(1);
        if let Some(t) = &shared.telemetry {
            // No request yet, so no trace id: conn attr is the join
            // key until the first frame's `net.read` lands.
            let now = t.clock.now_ns();
            t.emit("net.accepted", 0, now, 0, conn_id);
        }
        let conn_shared = Arc::clone(&shared);
        let join = match std::thread::Builder::new()
            .name(format!("net-conn-{conn_id}"))
            .spawn(move || conn_main(conn_id, reader_stream, conn_shared))
        {
            Ok(j) => j,
            Err(_) => {
                shared.metrics.conns_open.sub(1);
                continue;
            }
        };
        lock(&conns).push(ConnHandle { stream, join });
    }
}

/// A pool-accepted request travelling from reader to writer.
enum PendingReply {
    Stmt { id: u64, ticket: Ticket },
    Batch { id: u64, ticket: BatchTicket },
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (CR trimmed, LF consumed).
    Line,
    /// The line exceeded the frame bound; it was consumed and
    /// discarded up to and including its LF.
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// Read one `\n`-terminated line into `buf`, never holding more than
/// `max` payload bytes: once a line overflows the bound the rest of it
/// is consumed in discard mode, so a hostile megabyte line costs
/// bounded memory and one `proto` error, not a disconnect.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    buf.clear();
    let mut discarding = false;
    loop {
        let (newline_at, chunk_len) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF. A trailing unterminated line still counts.
                return Ok(if discarding {
                    LineRead::TooLong
                } else if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            let newline_at = chunk.iter().position(|&b| b == b'\n');
            let take = newline_at.unwrap_or(chunk.len());
            if !discarding {
                buf.extend_from_slice(&chunk[..take]);
                if buf.len() > max {
                    discarding = true;
                    buf.clear();
                }
            }
            (newline_at, chunk.len())
        };
        match newline_at {
            Some(pos) => {
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return Ok(if discarding {
                    LineRead::TooLong
                } else {
                    LineRead::Line
                });
            }
            None => reader.consume(chunk_len),
        }
    }
}

fn write_line(out: &Mutex<TcpStream>, line: &str) {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    let mut stream = lock(out);
    // A dead peer surfaces as EOF on the reader; nothing to do here.
    let _ = stream.write_all(framed.as_bytes());
}

fn conn_main(conn_id: u64, stream: TcpStream, shared: Arc<Shared>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.metrics.conns_open.sub(1);
            return;
        }
    };
    // Immediate responses (reader) and ticket responses (writer) share
    // the socket through this mutex; each line is written whole.
    let out = Arc::new(Mutex::new(write_half));
    let in_flight = Arc::new(AtomicU64::new(0));
    let (pending_tx, pending_rx) = channel::<PendingReply>();
    let writer = {
        let out = Arc::clone(&out);
        let shared = Arc::clone(&shared);
        let in_flight = Arc::clone(&in_flight);
        std::thread::Builder::new()
            .name(format!("net-write-{conn_id}"))
            .spawn(move || writer_main(pending_rx, out, shared, in_flight))
    };
    let writer = match writer {
        Ok(w) => w,
        Err(_) => {
            shared.metrics.conns_open.sub(1);
            return;
        }
    };

    // Until a `hello` pins one, every connection gets a private
    // session id: affinity groups its own statements, and the high bit
    // keeps it clear of small hand-picked ids.
    let mut session: u64 = (1 << 63) | conn_id;
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut buf, shared.max_frame_bytes) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                shared.metrics.frames_invalid.inc();
                let msg = format!("frame exceeds {} bytes", shared.max_frame_bytes);
                write_line(&out, &proto::err_line(None, "proto", &msg));
                shared.metrics.responses.inc();
            }
            Ok(LineRead::Line) => {
                let line = String::from_utf8_lossy(&buf);
                if line.trim().is_empty() {
                    continue; // blank keep-alive lines are free
                }
                let read_ns = shared.clock.now_ns();
                handle_frame(
                    &shared,
                    &out,
                    &pending_tx,
                    &in_flight,
                    conn_id,
                    &mut session,
                    &line,
                    read_ns,
                );
            }
        }
    }
    drop(pending_tx); // writer drains remaining tickets, then exits
    let _ = writer.join();
    shared.metrics.conns_open.sub(1);
}

#[allow(clippy::too_many_arguments)]
fn handle_frame(
    shared: &Arc<Shared>,
    out: &Mutex<TcpStream>,
    pending_tx: &Sender<PendingReply>,
    in_flight: &AtomicU64,
    conn_id: u64,
    session: &mut u64,
    line: &str,
    read_ns: u64,
) {
    let frame = match proto::decode_frame(line) {
        Ok(f) => f,
        Err(e) => {
            shared.metrics.frames_invalid.inc();
            write_line(out, &proto::err_line(e.id, "proto", &e.message));
            shared.metrics.responses.inc();
            return;
        }
    };
    let decoded_ns = shared.clock.now_ns();
    shared
        .metrics
        .read_to_decode_ns
        .observe(decoded_ns.saturating_sub(read_ns));
    shared.metrics.frames_decoded.inc();
    let id = frame.id;
    match frame.cmd {
        Command::Ping => {
            write_line(out, &proto::ok_line(id, "pong"));
            shared.metrics.responses.inc();
        }
        Command::Hello { session: s } => {
            *session = s;
            write_line(out, &proto::ok_line(id, &format!("session {s}")));
            shared.metrics.responses.inc();
        }
        Command::Stmt { src } => {
            if in_flight.load(Ordering::SeqCst) >= shared.max_in_flight as u64 {
                reject_busy(shared, out, id);
                return;
            }
            let submitted = lock(&shared.pool).submit(*session, &src);
            match submitted {
                Err(e) => {
                    write_line(
                        out,
                        &proto::err_line(Some(id), proto::error_kind(&e), &e.to_string()),
                    );
                    shared.metrics.responses.inc();
                }
                Ok(Submit::Full) => reject_busy(shared, out, id),
                Ok(Submit::Queued(ticket)) => {
                    emit_frame_events(shared, ticket.trace_id(), conn_id, read_ns, decoded_ns);
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    let _ = pending_tx.send(PendingReply::Stmt { id, ticket });
                }
            }
        }
        Command::Batch { stmts } => {
            if in_flight.load(Ordering::SeqCst) >= shared.max_in_flight as u64 {
                reject_busy(shared, out, id);
                return;
            }
            let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
            let submitted = lock(&shared.pool).submit_batch(*session, &refs);
            match submitted {
                Err(e) => {
                    write_line(
                        out,
                        &proto::err_line(Some(id), proto::error_kind(&e), &e.to_string()),
                    );
                    shared.metrics.responses.inc();
                }
                Ok(Submit::Full) => reject_busy(shared, out, id),
                Ok(Submit::Queued(ticket)) => {
                    emit_frame_events(shared, ticket.trace_id(), conn_id, read_ns, decoded_ns);
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    let _ = pending_tx.send(PendingReply::Batch { id, ticket });
                }
            }
        }
    }
}

fn reject_busy(shared: &Shared, out: &Mutex<TcpStream>, id: u64) {
    shared.metrics.rejected_busy.inc();
    write_line(out, &proto::busy_line(Some(id)));
    shared.metrics.responses.inc();
}

/// Stamp `net.read` and `net.decoded` with the trace id the pool
/// minted at submit, so one id spans socket → router → worker →
/// engine. Emitted *after* submit because the id does not exist
/// earlier; the events' own timestamps restore wire order.
fn emit_frame_events(
    shared: &Shared,
    trace_id: Option<u64>,
    conn_id: u64,
    read_ns: u64,
    decoded_ns: u64,
) {
    if let (Some(t), Some(trace_id)) = (&shared.telemetry, trace_id) {
        t.emit("net.read", trace_id, read_ns, 0, conn_id);
        t.emit(
            "net.decoded",
            trace_id,
            read_ns,
            decoded_ns.saturating_sub(read_ns),
            conn_id,
        );
    }
}

fn writer_main(
    pending: Receiver<PendingReply>,
    out: Arc<Mutex<TcpStream>>,
    shared: Arc<Shared>,
    in_flight: Arc<AtomicU64>,
) {
    while let Ok(reply) = pending.recv() {
        let line = match reply {
            PendingReply::Stmt { id, ticket } => match ticket.wait() {
                Ok(v) => proto::ok_line(id, &v),
                Err(e) => proto::err_line(Some(id), proto::error_kind(&e), &e.to_string()),
            },
            PendingReply::Batch { id, ticket } => match ticket.wait() {
                Ok(results) => proto::results_line(id, &results),
                Err(e) => proto::err_line(Some(id), proto::error_kind(&e), &e.to_string()),
            },
        };
        in_flight.fetch_sub(1, Ordering::SeqCst);
        write_line(&out, &line);
        shared.metrics.responses.inc();
    }
}

//! The TCP front door: blocking `std::net` threads around one
//! [`Pool`].
//!
//! # Threading model
//!
//! * One **accept** thread owns the listener. Per accepted socket it
//!   enforces the connection cap, stamps `net.accepted`, and spawns a
//!   reader.
//! * One **reader** thread per connection reads bounded lines, decodes
//!   frames, and submits to the pool under a brief mutex hold.
//!   Responses the reader can produce *immediately* — `ping`, `hello`,
//!   protocol errors, `busy` rejections — it writes itself.
//! * One **writer** thread per connection drains a channel of pool
//!   tickets **in submission order** and writes their responses. This
//!   is what makes the protocol pipelined: the reader never blocks on
//!   an engine evaluation, so a client may have many statements in
//!   flight, capped by [`NetConfig::max_in_flight`].
//!
//! The ordering contract follows: responses to pool-accepted requests
//! arrive in request order; immediate responses may overtake them.
//! Request ids disambiguate (DESIGN.md §15).
//!
//! # Drain
//!
//! [`NetServer::drain`] stops accepting, shuts down the read half of
//! every live socket (readers see EOF mid-pipeline, writers finish the
//! tickets already in their channels), joins every thread, and returns
//! the inner [`Pool`] so callers can inspect or keep using it. Nothing
//! accepted is dropped: a request that got a ticket gets its response
//! before its connection closes.

use crate::proto::{self, Command, DEFAULT_MAX_FRAME_BYTES};
use polyview::obs::jsonl::ObjectBuilder;
use polyview::obs::{
    EventRecord, EventSink, HistogramSnapshot, SharedClock, SharedCounter, SharedGauge,
    SharedHistogram, SharedRegistry, SharedWallClock, WindowView,
};
use polyview_pool::{BatchTicket, HealthReport, Pool, PoolConfig, Submit, Ticket};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration. Admission control is two-tier: a cap on open
/// connections (checked at accept) and a per-connection cap on
/// pipelined requests awaiting responses (checked at submit), on top
/// of the pool's own bounded queues.
#[derive(Clone)]
pub struct NetConfig {
    /// Configuration for the pool the server fronts; the server owns
    /// the pool it builds from this.
    pub pool: PoolConfig,
    /// Maximum simultaneously open connections. Excess connects get a
    /// single `{"busy":true}` line and are closed.
    pub max_conns: usize,
    /// Maximum pool-accepted requests a single connection may have
    /// awaiting responses. Excess frames get `{"id":N,"busy":true}`;
    /// the connection stays open.
    pub max_in_flight: usize,
    /// Longest accepted wire line in bytes (excluding the newline).
    pub max_frame_bytes: usize,
    /// Longest a single response write may block on a client that has
    /// stopped draining its socket before the connection is declared
    /// dead and closed (the writer-queue bound — reads are bounded by
    /// `max_frame_bytes`, writes by this). `0` disables the timeout.
    pub write_timeout_ms: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            pool: PoolConfig::default(),
            max_conns: 64,
            max_in_flight: 32,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            write_timeout_ms: 5_000,
        }
    }
}

impl NetConfig {
    pub fn pool(mut self, cfg: PoolConfig) -> Self {
        self.pool = cfg;
        self
    }

    pub fn max_conns(mut self, n: usize) -> Self {
        self.max_conns = n;
        self
    }

    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    pub fn max_frame_bytes(mut self, n: usize) -> Self {
        self.max_frame_bytes = n.max(2);
        self
    }

    pub fn write_timeout_ms(mut self, ms: u64) -> Self {
        self.write_timeout_ms = ms;
        self
    }
}

/// Server-side counters, backed by a [`SharedRegistry`] so
/// [`NetServer::metrics_json`] renders them alongside the pool's.
struct Metrics {
    registry: SharedRegistry,
    conns_open: SharedGauge,
    conns_accepted: SharedCounter,
    rejected_busy: SharedCounter,
    frames_decoded: SharedCounter,
    frames_invalid: SharedCounter,
    responses: SharedCounter,
    watch_pushes: SharedCounter,
    write_errors: SharedCounter,
    read_to_decode_ns: SharedHistogram,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = SharedRegistry::new();
        Metrics {
            conns_open: registry.gauge("net.conns_open"),
            conns_accepted: registry.counter("net.conns_accepted"),
            rejected_busy: registry.counter("net.rejected_busy"),
            frames_decoded: registry.counter("net.frames_decoded"),
            frames_invalid: registry.counter("net.frames_invalid"),
            responses: registry.counter("net.responses"),
            watch_pushes: registry.counter("net.watch_pushes"),
            write_errors: registry.counter("net.write_errors"),
            read_to_decode_ns: registry.histogram("net.read_to_decode_ns"),
            registry,
        }
    }
}

/// Point-in-time snapshot of the server's own counters (the pool's
/// live separately in [`polyview_pool::PoolStats`]).
#[derive(Clone, Debug)]
pub struct NetStats {
    /// Connections currently open.
    pub conns_open: u64,
    /// Connections ever accepted (excludes cap rejections).
    pub conns_accepted: u64,
    /// Requests refused by admission control: connection cap,
    /// in-flight cap, or a full pool queue.
    pub rejected_busy: u64,
    /// Frames decoded and dispatched.
    pub frames_decoded: u64,
    /// Lines that failed to decode (malformed JSON, bad shape,
    /// oversized).
    pub frames_invalid: u64,
    /// Response lines written.
    pub responses: u64,
    /// Server-initiated `watch` pushes written.
    pub watch_pushes: u64,
    /// Writes that failed or timed out (each one closes its
    /// connection).
    pub write_errors: u64,
    /// Socket-read to frame-decoded latency.
    pub read_to_decode: HistogramSnapshot,
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "net: {} open / {} accepted connections",
            self.conns_open, self.conns_accepted
        )?;
        writeln!(
            f,
            "     {} decoded, {} invalid, {} busy-rejected, {} responses",
            self.frames_decoded, self.frames_invalid, self.rejected_busy, self.responses
        )?;
        writeln!(
            f,
            "     {} watch pushes, {} write errors",
            self.watch_pushes, self.write_errors
        )?;
        write!(
            f,
            "     read→decode ns: p50={} p95={} p99={} (n={})",
            self.read_to_decode.quantile(0.50),
            self.read_to_decode.quantile(0.95),
            self.read_to_decode.quantile(0.99),
            self.read_to_decode.count
        )
    }
}

/// Clock + sink pair for `net.*` trace events; present only when the
/// pool's telemetry is on, so the disabled path stays a no-op.
struct NetTelemetry {
    clock: Arc<dyn SharedClock>,
    sink: Arc<dyn EventSink>,
}

impl NetTelemetry {
    fn emit(&self, name: &str, trace_id: u64, start_ns: u64, dur_ns: u64, conn: u64) {
        self.sink.emit(&EventRecord {
            name: name.to_string(),
            trace_id,
            parent: None,
            start_ns,
            dur_ns,
            attrs: vec![("conn".to_string(), conn)],
        });
    }
}

/// Everything a connection's threads share with the server.
struct Shared {
    pool: Mutex<Pool>,
    metrics: Metrics,
    telemetry: Option<NetTelemetry>,
    /// Time source for the read→decode histogram. Aliases the pool's
    /// telemetry clock when telemetry is on (deterministic tests see
    /// manual time everywhere); otherwise a private wall clock.
    clock: Arc<dyn SharedClock>,
    max_in_flight: usize,
    max_frame_bytes: usize,
    /// Per-write bound on a non-draining client ([`NetConfig::write_timeout_ms`]).
    write_timeout: Option<Duration>,
}

struct ConnHandle {
    /// Kept solely so drain can `Shutdown::Read` a live reader.
    stream: TcpStream,
    join: JoinHandle<()>,
}

/// The TCP front door. Construct with [`NetServer::bind`]; stop with
/// [`NetServer::drain`] (keep the pool) or [`NetServer::shutdown`]
/// (tear everything down).
pub struct NetServer {
    local_addr: SocketAddr,
    /// `Some` until [`NetServer::drain`] takes the pool out.
    shared: Option<Arc<Shared>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port), build the pool
    /// from `cfg.pool`, and start accepting.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let pool = Pool::new(cfg.pool.clone());
        let telemetry = if pool.telemetry_enabled() {
            Some(NetTelemetry {
                clock: pool.telemetry_clock(),
                sink: pool.event_sink(),
            })
        } else {
            None
        };
        let clock: Arc<dyn SharedClock> = match &telemetry {
            Some(t) => Arc::clone(&t.clock),
            None => Arc::new(SharedWallClock::new()),
        };
        let shared = Arc::new(Shared {
            pool: Mutex::new(pool),
            metrics: Metrics::new(),
            telemetry,
            clock,
            max_in_flight: cfg.max_in_flight.max(1),
            max_frame_bytes: cfg.max_frame_bytes.max(2),
            write_timeout: (cfg.write_timeout_ms > 0)
                .then(|| Duration::from_millis(cfg.write_timeout_ms)),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnHandle>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let max_conns = cfg.max_conns;
            std::thread::Builder::new()
                .name("net-accept".to_string())
                .spawn(move || accept_loop(listener, shared, stop, conns, max_conns))?
        };
        Ok(NetServer {
            local_addr,
            shared: Some(shared),
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Run `f` against the pool under the server's mutex. This is the
    /// only pool access the server exposes while serving — handing out
    /// the lock, not the pool, keeps [`NetServer::drain`]'s single
    /// ownership intact. Tests use it to reach deterministic hooks
    /// like [`Pool::pause_worker`].
    pub fn with_pool<R>(&self, f: impl FnOnce(&mut Pool) -> R) -> R {
        let mut guard = lock(&self.shared().pool);
        f(&mut guard)
    }

    fn shared(&self) -> &Arc<Shared> {
        self.shared.as_ref().expect("server not drained")
    }

    /// Snapshot the server's own counters.
    pub fn stats(&self) -> NetStats {
        let m = &self.shared().metrics;
        NetStats {
            conns_open: m.conns_open.get(),
            conns_accepted: m.conns_accepted.get(),
            rejected_busy: m.rejected_busy.get(),
            frames_decoded: m.frames_decoded.get(),
            frames_invalid: m.frames_invalid.get(),
            responses: m.responses.get(),
            watch_pushes: m.watch_pushes.get(),
            write_errors: m.write_errors.get(),
            read_to_decode: m.read_to_decode_ns.snapshot(),
        }
    }

    /// The introspection object the `stats` wire op serves, as one JSON
    /// object on one line — exactly the frame payload, so
    /// `pool_server --stats-interval` can emit it verbatim. Ticks the
    /// pool's stats window first (windowing is pull-driven; see
    /// [`polyview_pool::Pool::tick_window`]).
    pub fn stats_json(&self) -> String {
        stats_object(self.shared())
    }

    /// The pool health verdict ([`polyview_pool::Pool::health`]): a
    /// brief lock, no worker round-trip — safe while every queue is
    /// full.
    pub fn health(&self) -> HealthReport {
        self.with_pool(|p| p.health())
    }

    /// `net.*` and pool metrics as JSON lines (one object per line,
    /// same shape as [`polyview_pool::Pool::metrics_json`]).
    pub fn metrics_json(&self) -> String {
        let mut out = self.shared().metrics.registry.to_json_lines();
        out.push_str(&self.with_pool(|p| p.metrics_json()));
        out
    }

    /// Graceful drain: stop accepting, let every in-flight request
    /// finish and flush its response, close all connections, and
    /// return the pool (its workers still running).
    pub fn drain(mut self) -> Pool {
        self.drain_threads();
        let shared = self.shared.take().expect("server not drained");
        match Arc::try_unwrap(shared) {
            Ok(s) => s.pool.into_inner().unwrap_or_else(|e| e.into_inner()),
            Err(_) => unreachable!("all connection threads joined; no pool clones remain"),
        }
    }

    /// Drain, then shut the pool down too.
    pub fn shutdown(self) {
        let mut pool = self.drain();
        let _ = pool.drain();
        pool.shutdown();
    }

    /// Stop accepting and join every thread. Idempotent.
    fn drain_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // The accept thread blocks in `listener.incoming()`; a
            // throwaway local connection wakes it so it can observe
            // the stop flag. If it already exited, the connect just
            // fails — fine either way.
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
        let handles: Vec<ConnHandle> = lock(&self.conns).drain(..).collect();
        for conn in &handles {
            // EOF for the reader without killing queued responses: the
            // write half stays open until the writer thread finishes.
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        for conn in handles {
            let _ = conn.join.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // `drain`/`shutdown` already joined everything; this makes a
        // plain drop equally safe (no detached threads holding the
        // pool).
        self.drain_threads();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
    max_conns: usize,
) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Reap finished connections so the cap counts live ones only.
        lock(&conns).retain(|c| !c.join.is_finished());
        if shared.metrics.conns_open.get() >= max_conns as u64 {
            shared.metrics.rejected_busy.inc();
            let mut line = proto::busy_line(None);
            line.push('\n');
            let _ = stream.write_all(line.as_bytes());
            continue; // dropping the stream closes it
        }
        let conn_id = next_conn;
        next_conn += 1;
        let reader_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.metrics.conns_accepted.inc();
        shared.metrics.conns_open.add(1);
        if let Some(t) = &shared.telemetry {
            // No request yet, so no trace id: conn attr is the join
            // key until the first frame's `net.read` lands.
            let now = t.clock.now_ns();
            t.emit("net.accepted", 0, now, 0, conn_id);
        }
        let conn_shared = Arc::clone(&shared);
        let join = match std::thread::Builder::new()
            .name(format!("net-conn-{conn_id}"))
            .spawn(move || conn_main(conn_id, reader_stream, conn_shared))
        {
            Ok(j) => j,
            Err(_) => {
                shared.metrics.conns_open.sub(1);
                continue;
            }
        };
        lock(&conns).push(ConnHandle { stream, join });
    }
}

/// What travels from reader to writer: pool-accepted requests, plus the
/// `watch`/`unwatch` controls — routed through the writer (not answered
/// as immediates) so their acks keep submission order relative to the
/// tickets around them, and so the watch interval can live as plain
/// writer-local state.
enum PendingReply {
    Stmt { id: u64, ticket: Ticket },
    Batch { id: u64, ticket: BatchTicket },
    Watch { id: u64, interval_ms: u64 },
    Unwatch { id: u64 },
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (CR trimmed, LF consumed).
    Line,
    /// The line exceeded the frame bound; it was consumed and
    /// discarded up to and including its LF.
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// Read one `\n`-terminated line into `buf`, never holding more than
/// `max` payload bytes: once a line overflows the bound the rest of it
/// is consumed in discard mode, so a hostile megabyte line costs
/// bounded memory and one `proto` error, not a disconnect.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    buf.clear();
    let mut discarding = false;
    loop {
        let (newline_at, chunk_len) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF. A trailing unterminated line still counts.
                return Ok(if discarding {
                    LineRead::TooLong
                } else if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            let newline_at = chunk.iter().position(|&b| b == b'\n');
            let take = newline_at.unwrap_or(chunk.len());
            if !discarding {
                buf.extend_from_slice(&chunk[..take]);
                if buf.len() > max {
                    discarding = true;
                    buf.clear();
                }
            }
            (newline_at, chunk.len())
        };
        match newline_at {
            Some(pos) => {
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return Ok(if discarding {
                    LineRead::TooLong
                } else {
                    LineRead::Line
                });
            }
            None => reader.consume(chunk_len),
        }
    }
}

fn write_line(out: &Mutex<TcpStream>, line: &str) -> std::io::Result<()> {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    let mut stream = lock(out);
    // Under [`NetConfig::write_timeout_ms`] a client that has stopped
    // draining its socket turns this into an error once the kernel
    // buffer fills; the caller treats any error as connection-dead.
    stream.write_all(framed.as_bytes())
}

/// Write a reader-side immediate response, counting it. An error means
/// the peer is unreachable: the caller abandons the connection.
fn send_immediate(shared: &Shared, out: &Mutex<TcpStream>, line: &str) -> std::io::Result<()> {
    match write_line(out, line) {
        Ok(()) => {
            shared.metrics.responses.inc();
            Ok(())
        }
        Err(e) => {
            shared.metrics.write_errors.inc();
            Err(e)
        }
    }
}

fn conn_main(conn_id: u64, stream: TcpStream, shared: Arc<Shared>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.metrics.conns_open.sub(1);
            return;
        }
    };
    // Bound every write the way reads are bounded: a client that stops
    // draining makes writes fail instead of buffering unboundedly.
    if let Some(t) = shared.write_timeout {
        let _ = write_half.set_write_timeout(Some(t));
    }
    // Immediate responses (reader) and ticket responses (writer) share
    // the socket through this mutex; each line is written whole.
    let out = Arc::new(Mutex::new(write_half));
    let in_flight = Arc::new(AtomicU64::new(0));
    let (pending_tx, pending_rx) = channel::<PendingReply>();
    let writer = {
        let out = Arc::clone(&out);
        let shared = Arc::clone(&shared);
        let in_flight = Arc::clone(&in_flight);
        std::thread::Builder::new()
            .name(format!("net-write-{conn_id}"))
            .spawn(move || writer_main(pending_rx, out, shared, in_flight))
    };
    let writer = match writer {
        Ok(w) => w,
        Err(_) => {
            shared.metrics.conns_open.sub(1);
            return;
        }
    };

    // Until a `hello` pins one, every connection gets a private
    // session id: affinity groups its own statements, and the high bit
    // keeps it clear of small hand-picked ids.
    let mut session: u64 = (1 << 63) | conn_id;
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut buf, shared.max_frame_bytes) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                shared.metrics.frames_invalid.inc();
                let msg = format!("frame exceeds {} bytes", shared.max_frame_bytes);
                if send_immediate(&shared, &out, &proto::err_line(None, "proto", &msg)).is_err() {
                    break;
                }
            }
            Ok(LineRead::Line) => {
                let line = String::from_utf8_lossy(&buf);
                if line.trim().is_empty() {
                    continue; // blank keep-alive lines are free
                }
                let read_ns = shared.clock.now_ns();
                let served = handle_frame(
                    &shared,
                    &out,
                    &pending_tx,
                    &in_flight,
                    conn_id,
                    &mut session,
                    &line,
                    read_ns,
                );
                if served.is_err() {
                    // The write half is gone; stop reading too.
                    break;
                }
            }
        }
    }
    drop(pending_tx); // writer drains remaining tickets, then exits
    let _ = writer.join();
    shared.metrics.conns_open.sub(1);
}

#[allow(clippy::too_many_arguments)]
fn handle_frame(
    shared: &Arc<Shared>,
    out: &Mutex<TcpStream>,
    pending_tx: &Sender<PendingReply>,
    in_flight: &AtomicU64,
    conn_id: u64,
    session: &mut u64,
    line: &str,
    read_ns: u64,
) -> std::io::Result<()> {
    let frame = match proto::decode_frame(line) {
        Ok(f) => f,
        Err(e) => {
            shared.metrics.frames_invalid.inc();
            return send_immediate(shared, out, &proto::err_line(e.id, "proto", &e.message));
        }
    };
    let decoded_ns = shared.clock.now_ns();
    shared
        .metrics
        .read_to_decode_ns
        .observe(decoded_ns.saturating_sub(read_ns));
    shared.metrics.frames_decoded.inc();
    let id = frame.id;
    match frame.cmd {
        Command::Ping => send_immediate(shared, out, &proto::ok_line(id, "pong"))?,
        Command::Hello { session: s } => {
            *session = s;
            send_immediate(shared, out, &proto::ok_line(id, &format!("session {s}")))?;
        }
        Command::Health => {
            // An immediate like `ping`: `Pool::health` reads lock-free
            // atomics under a brief mutex hold (the pool lock is never
            // held across a blocking operation), so this answers even
            // while every pool queue is full.
            let report = lock(&shared.pool).health();
            send_immediate(shared, out, &proto::health_line(id, &report))?;
        }
        Command::Stats => {
            let obj = stats_object(shared);
            send_immediate(shared, out, &proto::stats_line(id, &obj))?;
        }
        Command::Watch { interval_ms } => {
            // Through the writer, not an immediate: the ack lands in
            // submission order, and pushes are writer-local state.
            let _ = pending_tx.send(PendingReply::Watch { id, interval_ms });
        }
        Command::Unwatch => {
            let _ = pending_tx.send(PendingReply::Unwatch { id });
        }
        Command::Stmt { src } => {
            if in_flight.load(Ordering::SeqCst) >= shared.max_in_flight as u64 {
                return reject_busy(shared, out, id);
            }
            let submitted = lock(&shared.pool).submit(*session, &src);
            match submitted {
                Err(e) => {
                    send_immediate(
                        shared,
                        out,
                        &proto::err_line(Some(id), proto::error_kind(&e), &e.to_string()),
                    )?;
                }
                Ok(Submit::Full) => return reject_busy(shared, out, id),
                Ok(Submit::Queued(ticket)) => {
                    emit_frame_events(shared, ticket.trace_id(), conn_id, read_ns, decoded_ns);
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    let _ = pending_tx.send(PendingReply::Stmt { id, ticket });
                }
            }
        }
        Command::Batch { stmts } => {
            if in_flight.load(Ordering::SeqCst) >= shared.max_in_flight as u64 {
                return reject_busy(shared, out, id);
            }
            let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
            let submitted = lock(&shared.pool).submit_batch(*session, &refs);
            match submitted {
                Err(e) => {
                    send_immediate(
                        shared,
                        out,
                        &proto::err_line(Some(id), proto::error_kind(&e), &e.to_string()),
                    )?;
                }
                Ok(Submit::Full) => return reject_busy(shared, out, id),
                Ok(Submit::Queued(ticket)) => {
                    emit_frame_events(shared, ticket.trace_id(), conn_id, read_ns, decoded_ns);
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    let _ = pending_tx.send(PendingReply::Batch { id, ticket });
                }
            }
        }
    }
    Ok(())
}

fn reject_busy(shared: &Shared, out: &Mutex<TcpStream>, id: u64) -> std::io::Result<()> {
    shared.metrics.rejected_busy.inc();
    send_immediate(shared, out, &proto::busy_line(Some(id)))
}

/// Stamp `net.read` and `net.decoded` with the trace id the pool
/// minted at submit, so one id spans socket → router → worker →
/// engine. Emitted *after* submit because the id does not exist
/// earlier; the events' own timestamps restore wire order.
fn emit_frame_events(
    shared: &Shared,
    trace_id: Option<u64>,
    conn_id: u64,
    read_ns: u64,
    decoded_ns: u64,
) {
    if let (Some(t), Some(trace_id)) = (&shared.telemetry, trace_id) {
        t.emit("net.read", trace_id, read_ns, 0, conn_id);
        t.emit(
            "net.decoded",
            trace_id,
            read_ns,
            decoded_ns.saturating_sub(read_ns),
            conn_id,
        );
    }
}

fn writer_main(
    pending: Receiver<PendingReply>,
    out: Arc<Mutex<TcpStream>>,
    shared: Arc<Shared>,
    in_flight: Arc<AtomicU64>,
) {
    // Watch state is writer-local: the interval, the next push
    // deadline, and the per-connection push sequence number.
    let mut watch: Option<Duration> = None;
    let mut next_push: Option<Instant> = None;
    let mut push_seq: u64 = 0;
    // Once a write fails the peer is unreachable: shut the socket (the
    // reader sees EOF and exits), stop watching, and keep draining the
    // channel so every accepted ticket still releases its in-flight
    // slot (the results are discarded — there is nowhere to send them).
    let mut dead = false;
    loop {
        let reply = match next_push {
            Some(deadline) if !dead => {
                let now = Instant::now();
                if now >= deadline {
                    // A push is due. Pushes are generated only here —
                    // when the ticket channel is idle — so pool replies
                    // always take priority and a slow interval *sheds*
                    // missed pushes rather than queueing them: the next
                    // deadline counts from after this write finishes.
                    push_seq += 1;
                    let obj = stats_object(&shared);
                    match write_line(&out, &proto::push_line(push_seq, &obj)) {
                        Ok(()) => {
                            shared.metrics.watch_pushes.inc();
                            next_push = watch.map(|i| Instant::now() + i);
                        }
                        Err(_) => {
                            shared.metrics.write_errors.inc();
                            dead = true;
                            watch = None;
                            next_push = None;
                            let _ = lock(&out).shutdown(Shutdown::Both);
                        }
                    }
                    continue;
                }
                match pending.recv_timeout(deadline - now) {
                    Ok(r) => r,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            _ => match pending.recv() {
                Ok(r) => r,
                Err(_) => break,
            },
        };
        let line = match reply {
            PendingReply::Stmt { id, ticket } => {
                if dead {
                    drop(ticket); // the worker's reply send is a no-op
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let line = match ticket.wait() {
                    Ok(v) => proto::ok_line(id, &v),
                    Err(e) => proto::err_line(Some(id), proto::error_kind(&e), &e.to_string()),
                };
                // Release the slot *before* the write, not after: the
                // client may observe the response and pipeline its next
                // request faster than this thread runs, and a late
                // release would answer that compliant request `busy`.
                // A non-draining client is still bounded — its tickets
                // hold slots until this thread reaches them (the
                // channel never holds more than `max_in_flight`), and a
                // write stuck on its full socket trips the write
                // timeout below.
                in_flight.fetch_sub(1, Ordering::SeqCst);
                line
            }
            PendingReply::Batch { id, ticket } => {
                if dead {
                    drop(ticket);
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let line = match ticket.wait() {
                    Ok(results) => proto::results_line(id, &results),
                    Err(e) => proto::err_line(Some(id), proto::error_kind(&e), &e.to_string()),
                };
                in_flight.fetch_sub(1, Ordering::SeqCst);
                line
            }
            PendingReply::Watch { id, interval_ms } => {
                if dead {
                    continue;
                }
                let interval = Duration::from_millis(interval_ms);
                watch = Some(interval);
                next_push = Some(Instant::now() + interval);
                proto::ok_line(id, &format!("watch {interval_ms}ms"))
            }
            PendingReply::Unwatch { id } => {
                if dead {
                    continue;
                }
                watch = None;
                next_push = None;
                proto::ok_line(id, "unwatch")
            }
        };
        match write_line(&out, &line) {
            Ok(()) => shared.metrics.responses.inc(),
            Err(_) => {
                shared.metrics.write_errors.inc();
                dead = true;
                watch = None;
                next_push = None;
                let _ = lock(&out).shutdown(Shutdown::Both);
            }
        }
    }
}

/// Build the one-object `stats` payload: verdict + windowed view +
/// cumulative registries + per-worker rows + the slow ring + `net.*`
/// counters. One brief pool lock copies everything out; serialization
/// happens after the lock drops.
fn stats_object(shared: &Shared) -> String {
    let at_ns = shared.clock.now_ns();
    let (report, rows, window, cumulative, slow) = {
        let mut pool = lock(&shared.pool);
        // Windowing is pull-driven: serving `stats` is what ticks it.
        pool.tick_window();
        (
            pool.health(),
            pool.worker_rows(),
            pool.window(),
            pool.registry_snapshot(at_ns),
            pool.slow_requests(),
        )
    };

    let window_obj = match &window {
        None => "null".to_string(),
        Some(w) => window_object(w),
    };

    let mut cum_hists = ObjectBuilder::new();
    for (name, h) in &cumulative.histograms {
        cum_hists = cum_hists.field_raw(name, &hist_object(h));
    }
    let cumulative_obj = ObjectBuilder::new()
        .field_raw("counters", &u64_map_object(&cumulative.counters))
        .field_raw("gauges", &u64_map_object(&cumulative.gauges))
        .field_raw("histograms", &cum_hists.finish())
        .finish();

    let mut workers_arr = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            workers_arr.push(',');
        }
        workers_arr.push_str(
            &ObjectBuilder::new()
                .field_u64("worker", r.worker as u64)
                .field_u64("generation", r.generation)
                .field_bool("live", r.live)
                .field_u64("applied", r.applied)
                .field_u64("replay_lag", r.replay_lag)
                .field_u64("queue_depth", r.queue_depth)
                .field_u64("replay_errors", r.replay_errors)
                .finish(),
        );
    }
    workers_arr.push(']');

    let mut slow_arr = String::from("[");
    for (i, s) in slow.iter().enumerate() {
        if i > 0 {
            slow_arr.push(',');
        }
        slow_arr.push_str(
            &ObjectBuilder::new()
                .field_u64("id", s.id)
                .field_u64("session", s.session)
                .field_u64("worker", s.worker as u64)
                .field_u64("generation", s.generation)
                .field_str("class", &s.class.to_string())
                .field_u64("e2e_ns", s.e2e_ns)
                .field_u64("queue_wait_ns", s.queue_wait_ns)
                .field_u64("catchup_ns", s.catchup_ns)
                .field_str("src", &s.src)
                .finish(),
        );
    }
    slow_arr.push(']');

    let m = &shared.metrics;
    let net_obj = ObjectBuilder::new()
        .field_u64("conns_open", m.conns_open.get())
        .field_u64("conns_accepted", m.conns_accepted.get())
        .field_u64("rejected_busy", m.rejected_busy.get())
        .field_u64("frames_decoded", m.frames_decoded.get())
        .field_u64("frames_invalid", m.frames_invalid.get())
        .field_u64("responses", m.responses.get())
        .field_u64("watch_pushes", m.watch_pushes.get())
        .field_u64("write_errors", m.write_errors.get())
        .field_raw(
            "read_to_decode_ns",
            &hist_object(&m.read_to_decode_ns.snapshot()),
        )
        .finish();

    ObjectBuilder::new()
        .field_u64("at_ns", at_ns)
        .field_str("health", report.health.as_str())
        .field_str_array("health_reasons", report.health.reasons())
        .field_u64("workers", report.workers as u64)
        .field_u64("log_len", report.log_len)
        .field_u64("max_replay_lag", report.max_replay_lag)
        .field_u64("max_queue_depth", report.max_queue_depth)
        .field_raw("busy_rate", &proto::json_f64(report.busy_rate))
        .field_raw("error_rate", &proto::json_f64(report.error_rate))
        .field_raw("window", &window_obj)
        .field_raw("cumulative", &cumulative_obj)
        .field_raw("per_worker", &workers_arr)
        .field_raw("slow", &slow_arr)
        .field_raw("net", &net_obj)
        .finish()
}

/// The windowed section: counter deltas, per-second rates, latest gauge
/// levels, and windowed histogram quantiles.
fn window_object(w: &WindowView) -> String {
    let mut rates = ObjectBuilder::new();
    for name in w.counters.keys() {
        rates = rates.field_raw(name, &proto::json_f64(w.rate_per_sec(name)));
    }
    let mut hists = ObjectBuilder::new();
    for (name, h) in &w.histograms {
        hists = hists.field_raw(name, &hist_object(h));
    }
    ObjectBuilder::new()
        .field_u64("from_ns", w.from_ns)
        .field_u64("to_ns", w.to_ns)
        .field_u64("span_ns", w.span_ns())
        .field_raw("counters", &u64_map_object(&w.counters))
        .field_raw("rates", &rates.finish())
        .field_raw("gauges", &u64_map_object(&w.gauges))
        .field_raw("histograms", &hists.finish())
        .finish()
}

fn u64_map_object(map: &BTreeMap<String, u64>) -> String {
    let mut b = ObjectBuilder::new();
    for (name, &v) in map {
        b = b.field_u64(name, v);
    }
    b.finish()
}

fn hist_object(h: &HistogramSnapshot) -> String {
    ObjectBuilder::new()
        .field_u64("count", h.count)
        .field_u64("sum", h.sum)
        .field_u64("min", if h.count == 0 { 0 } else { h.min })
        .field_u64("max", h.max)
        .field_u64("p50", h.quantile(0.50))
        .field_u64("p95", h.quantile(0.95))
        .field_u64("p99", h.quantile(0.99))
        .finish()
}

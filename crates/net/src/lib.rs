//! `polyview-net` — the TCP front door over the replicated engine
//! pool.
//!
//! [`NetServer`] binds a listener, builds a [`polyview_pool::Pool`]
//! from its config, and serves a **pipelined JSON-lines protocol**:
//! one JSON object per line in both directions, many requests in
//! flight per connection, responses to pool-accepted requests in
//! request order (see [`proto`] for the wire grammar and DESIGN.md §15
//! for the full contract).
//!
//! The crate is std-only — blocking `std::net` sockets, one reader and
//! one writer thread per connection, and the zero-dependency JSON
//! codec from `polyview-obs` on both ends of the wire. Sessions map
//! onto pool session affinity: a `hello` frame pins a connection to an
//! explicit session id, giving read-your-writes across connections
//! that share it. Admission control is explicit at every tier
//! (connection cap, per-connection in-flight cap, bounded pool queues)
//! and always surfaces as a structured `busy` response rather than a
//! stall or a disconnect.
//!
//! ```no_run
//! use polyview_net::{NetClient, NetConfig, NetServer};
//!
//! let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! client.call("table People : {{Name:String}};").unwrap();
//! let rows = client.call("cquery (fun p => p#Name) People;").unwrap();
//! println!("{rows}");
//! let pool = server.drain(); // graceful: in-flight requests finish
//! drop(pool);
//! ```

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientError, NetClient};
pub use proto::{Command, Frame, FrameError, Reply, Response};
pub use server::{NetConfig, NetServer, NetStats};

#!/usr/bin/env bash
# Offline-safe verification: everything here runs with no network access.
#
# The workspace proper has zero external dependencies (DESIGN.md §7). The
# property-test and benchmark packages are excluded because they carry
# proptest/rand/criterion; run them explicitly when a registry is
# reachable:
#
#     cargo test  --manifest-path crates/proptests/Cargo.toml
#     cargo bench --manifest-path crates/bench/Cargo.toml
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (all crates)"
cargo test --workspace -q

echo "==> pool smoke: serving-layer suite under --release"
# The pool suite exercises real concurrency (worker threads, crash
# injection, backpressure); run it under the release profile too so
# timing-sensitive regressions surface in both profiles.
cargo test -q --release --test pool

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> dependency hygiene: crates/obs declares no dependencies at all"
# The observability crate must stay std-only (DESIGN.md §9/§11): not even
# path dependencies, so it can never grow a transitive external edge.
if grep -q '^\[.*dependencies\]' crates/obs/Cargo.toml; then
    echo "FAIL: crates/obs/Cargo.toml declares a dependencies section"
    exit 1
fi

echo "==> dependency hygiene: workspace members carry no external deps"
# Every dependency line in every workspace manifest must be a path/workspace
# dependency — a line pulling from a registry (e.g. `serde = "1"`) fails.
for manifest in Cargo.toml \
    crates/syntax/Cargo.toml crates/parser/Cargo.toml crates/types/Cargo.toml \
    crates/eval/Cargo.toml crates/trans/Cargo.toml crates/isa/Cargo.toml \
    crates/obs/Cargo.toml crates/core/Cargo.toml crates/pool/Cargo.toml \
    crates/net/Cargo.toml; do
    awk -v manifest="$manifest" '
        /^\[/ {
            in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/)
            next
        }
        in_deps && NF && $0 !~ /^[[:space:]]*#/ \
                     && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/ \
                     && $0 !~ /path[[:space:]]*=/ {
            printf "external dependency in %s: %s\n", manifest, $0
            bad = 1
        }
        END { exit bad }
    ' "$manifest" || { echo "FAIL: dependency hygiene ($manifest)"; exit 1; }
done

echo "==> metrics export: one JSON object per line + cache-behavior smoke"
# metrics_dump runs the same query three times around an unrelated `val`
# rebind: per-name dependency invalidation (DESIGN.md §12) must keep the
# cached compilation warm — hits > 0, dep-invalidations exactly 0.
cargo run -q --release --example metrics_dump | python3 -c '
import json, sys
lines = sys.stdin.read().splitlines()
assert lines, "metrics_dump printed nothing"
for line in lines:
    obj = json.loads(line)
    assert isinstance(obj, dict) and "kind" in obj and "name" in obj, line
kinds = {json.loads(l)["kind"] for l in lines}
assert kinds == {"counter", "histogram"}, kinds
counters = {o["name"]: o["value"] for o in map(json.loads, lines) if o["kind"] == "counter"}
hits = counters["engine.stmt_cache_hits"]
deps = counters["engine.stmt_cache_dep_invalidations"]
assert hits > 0, f"expected statement-cache hits, got {hits}"
assert deps == 0, f"unrelated rebind must not invalidate: dep_invalidations={deps}"
# Compile-tier gate (DESIGN.md §13/§14): the two fallback families are
# asserted separately. `trans.dynamic_residue` counts field ops the
# *lowerer* left dynamic (static residue, decided at compile time);
# `eval.dyn_field_fallbacks` counts dynamic lookups the *evaluator*
# actually executed (runtime fallbacks). On this workload both stay 0 and
# every field op runs through an integer offset.
offs = counters["eval.field_offsets_resolved"]
falls = counters["eval.dyn_field_fallbacks"]
s_offs = counters["trans.offsets_resolved"]
s_res = counters["trans.dynamic_residue"]
assert offs > 0, f"expected offset-resolved field ops, got {offs}"
assert s_offs > 0, f"expected the lowerer to resolve offsets, got {s_offs}"
assert s_res == 0, f"lowerer left {s_res} field op(s) dynamic (static residue)"
assert falls == 0, f"evaluator fell back to dynamic lookup {falls} time(s) (runtime fallbacks)"
print(f"  {len(lines)} metrics lines, all valid JSON objects; "
      f"stmt_cache_hits={hits}, dep_invalidations={deps}, "
      f"field_offsets={offs}, static_residue={s_res}, runtime_fallbacks={falls}")
'

echo "==> profile export: profile_dump emits valid attribution JSON lines"
# The example self-validates each line with polyview::obs::jsonl before
# printing; this gate re-checks independently, asserts every attribution
# channel emitted, and mechanically re-verifies zero-cost-when-off (the
# disabled machine's injected clock was never read).
cargo run -q --release --example profile_dump | python3 -c '
import json, sys
lines = sys.stdin.read().splitlines()
assert lines, "profile_dump printed nothing"
objs = [json.loads(l) for l in lines]
assert all(isinstance(o, dict) and "kind" in o for o in objs)
kinds = {o["kind"] for o in objs}
for must in ("profile.node", "profile.fallback_site",
             "profile.view_recompute", "profile.summary"):
    assert must in kinds, f"no {must} line in profile dump"
nodes = [o for o in objs if o["kind"] == "profile.node"]
summary = next(o for o in objs if o["kind"] == "profile.summary")
assert summary["eval_ns"] > 0 and summary["nodes"] == len(nodes)
assert summary["truncated_frames"] == 0
roots = [o for o in nodes if o["path"] == []]
assert sum(o["total_ns"] for o in roots) == summary["eval_ns"], \
    "root totals must sum to the statement eval time"
site = next(o for o in objs if o["kind"] == "profile.fallback_site")
label, count = site["label"], site["count"]
assert label and count > 0, site
view = next(o for o in objs if o["kind"] == "profile.view_recompute")
vclass, vrec = view["class"], view["recomputes"]
assert vclass == "Staff" and vrec > 0, view
off = next(o for o in objs if o["kind"] == "profile.disabled_check")
reads = off["disabled_clock_reads"]
assert reads == 0, f"profiler-off path read the clock {reads} time(s)"
print(f"  {len(lines)} profile lines; {len(nodes)} nodes, "
      f"fallback .{label} x{count}, view {vclass} recomputes={vrec}, "
      f"disabled clock reads=0")
'

echo "==> trace export: pool_server --trace emits valid JSON event lines"
# The binary self-validates each line with the std-only checker in
# polyview::obs::jsonl before printing; this gate re-checks the stream
# independently and asserts the schema keys and cross-thread stitching.
cargo run -q --release --example pool_server -- --trace 2>/dev/null | python3 -c '
import json, sys
lines = sys.stdin.read().splitlines()
assert lines, "pool_server --trace printed nothing"
required = {"kind", "name", "trace_id", "start_ns", "dur_ns"}
events = []
for line in lines:
    obj = json.loads(line)
    assert isinstance(obj, dict), line
    assert required <= obj.keys(), f"missing keys in {line}"
    assert obj["kind"] == "span", line
    events.append(obj)
names = {e["name"] for e in events}
for must in ("pool.submitted", "pool.enqueued", "pool.dequeued",
             "pool.catchup", "pool.completed", "engine.eval"):
    assert must in names, f"no {must} event in trace"
# Engine-phase events carry the owning request as parent: at least one
# trace id must stitch a pool lifecycle to an engine span.
stitched = {e["parent"] for e in events if e["name"].startswith("engine.") and "parent" in e}
assert stitched & {e["trace_id"] for e in events if e["name"] == "pool.submitted"}, \
    "no engine span stitched to a submitted request"
print(f"  {len(events)} trace events, all valid and stitched")
'

echo "==> net smoke: loadgen drives the TCP front door over loopback"
# A real server process on an ephemeral loopback port, a real wire-level
# client. Frame budget is exact: 1 setup batch + 3 hellos + 60 statements
# = 64 frames, and the server exits after decoding precisely that many,
# draining gracefully. The server's stderr stats must report zero invalid
# frames and zero busy rejections; its --trace stdout must be valid JSON
# event lines with `net.*` spans stitched to `engine.*` spans by trace id.
cargo build -q --release --example pool_server --example loadgen
net_dir="$(mktemp -d)"
target/release/examples/pool_server --listen 127.0.0.1:0 \
    --addr-file "$net_dir/addr" --requests 64 --trace \
    >"$net_dir/trace" 2>"$net_dir/stats" &
net_server_pid=$!
target/release/examples/loadgen --addr-file "$net_dir/addr" \
    --requests 60 --clients 3 >"$net_dir/loadgen"
wait "$net_server_pid"
grep -q "0 busy retries, 0 statement errors" "$net_dir/loadgen" \
    || { echo "FAIL: loadgen saw rejections or errors"; cat "$net_dir/loadgen"; exit 1; }
grep -q "64 decoded, 0 invalid, 0 busy-rejected" "$net_dir/stats" \
    || { echo "FAIL: server counters off"; cat "$net_dir/stats"; exit 1; }
python3 -c '
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "net server --trace printed nothing"
required = {"kind", "name", "trace_id", "start_ns", "dur_ns"}
events = []
for line in lines:
    obj = json.loads(line)
    assert isinstance(obj, dict) and obj["kind"] == "span", line
    assert required <= obj.keys(), f"missing keys in {line}"
    events.append(obj)
names = {e["name"] for e in events}
for must in ("net.accepted", "net.read", "net.decoded",
             "pool.submitted", "pool.sequenced", "engine.eval"):
    assert must in names, f"no {must} event in the wire trace"
# Socket-side events reuse the pool-minted request trace id, so one id
# spans socket -> router -> worker -> engine.
net_traces = {e["trace_id"] for e in events if e["name"] == "net.read"}
pool_traces = {e["trace_id"] for e in events if e["name"] == "pool.submitted"}
assert net_traces and 0 not in net_traces, "net.read must carry real trace ids"
assert net_traces <= pool_traces, "every net.read id must belong to a submitted request"
engine_parents = {e.get("parent") for e in events if e["name"].startswith("engine.")}
assert net_traces & engine_parents, "no net-side id reached an engine span"
print(f"  {len(events)} wire-trace events; {len(net_traces)} socket traces, "
      f"all stitched through pool to engine spans")
' "$net_dir/trace"
rm -rf "$net_dir"

echo "==> stats smoke: the introspection plane observes the load it serves"
# Same server/loadgen pair, introspection on: the server emits a
# self-validated stats snapshot every 50ms (--stats-interval) while
# loadgen polls the `stats`/`health` wire ops concurrently with the load
# (--stats-polls 3). Frame budget: 1 setup batch + 2 hellos + 40
# statements + 2x3 poll frames = 49. Every emitted snapshot must be a
# valid JSON object with the full schema, report a healthy verdict, and
# at least one post-load snapshot must have a nonzero windowed read
# rate; loadgen's own final poll asserts the same from the wire side.
stats_dir="$(mktemp -d)"
target/release/examples/pool_server --listen 127.0.0.1:0 \
    --addr-file "$stats_dir/addr" --requests 49 --stats-interval 50 \
    >"$stats_dir/snapshots" 2>"$stats_dir/stats" &
stats_server_pid=$!
target/release/examples/loadgen --addr-file "$stats_dir/addr" \
    --requests 40 --clients 2 --stats-polls 3 >"$stats_dir/loadgen"
wait "$stats_server_pid"
grep -q "0 busy retries, 0 statement errors" "$stats_dir/loadgen" \
    || { echo "FAIL: loadgen saw rejections or errors"; cat "$stats_dir/loadgen"; exit 1; }
grep -q "final stats: health=healthy" "$stats_dir/loadgen" \
    || { echo "FAIL: no healthy final stats poll"; cat "$stats_dir/loadgen"; exit 1; }
python3 -c '
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "pool_server --stats-interval printed no snapshots"
required = {"at_ns", "health", "health_reasons", "workers", "window",
            "cumulative", "per_worker", "slow", "net"}
snaps = []
for line in lines:
    obj = json.loads(line)
    assert isinstance(obj, dict), line
    assert required <= obj.keys(), f"missing keys in snapshot: {sorted(required - obj.keys())}"
    snaps.append(obj)
assert all(s["health"] == "healthy" for s in snaps), \
    [s["health"] for s in snaps]
# The last snapshot is taken after the whole load; its cumulative
# counters must have seen every request and its window a nonzero rate.
last = snaps[-1]
reads = last["cumulative"]["counters"]["pool.submitted_reads"]
assert reads == 36, f"expected 36 cumulative reads (90% of 40), got {reads}"
windowed = [s for s in snaps
            if s["window"] and s["window"]["rates"]["pool.submitted_reads"] > 0]
assert windowed, "no snapshot windowed a nonzero read rate"
net = last["net"]
assert net["frames_invalid"] == 0 and net["write_errors"] == 0, net
frames = net["frames_decoded"]
print(f"  {len(snaps)} snapshots, all valid and healthy; "
      f"{len(windowed)} with nonzero windowed read rate, "
      f"cumulative reads={reads}, frames={frames}")
' "$stats_dir/snapshots"
rm -rf "$stats_dir"

echo "==> snapshot smoke: bounded recovery + restart from --snapshot-dir"
# In-process pool_server with checkpointing (DESIGN.md §17): the injected
# crash on worker 1 must respawn from a checkpoint (gen=1) and replay only
# the short log tail above it — never the whole history. The run writes 22
# sequenced statements (2 seed + 20 inserts), so with --checkpoint-every 4
# a bounded respawn replays at most a handful of entries; 22 would mean
# the unbounded full-replay path is back. A second run over the same
# --snapshot-dir must resume from the persisted checkpoint: its log picks
# up at the restored base (20, the newest checkpoint grid point below 22)
# instead of offset 0, so the final absolute log length is 20 + 22 = 42.
snap_dir="$(mktemp -d)"
target/release/examples/pool_server --checkpoint-every 4 \
    --snapshot-dir "$snap_dir/ckpt" >"$snap_dir/run1"
ls "$snap_dir"/ckpt/checkpoint-*.pvpc >/dev/null 2>&1 \
    || { echo "FAIL: no checkpoint file persisted"; ls -la "$snap_dir/ckpt" || true; exit 1; }
target/release/examples/pool_server --checkpoint-every 4 \
    --snapshot-dir "$snap_dir/ckpt" >"$snap_dir/run2"
python3 -c '
import re, sys

def check(path, label, log_len):
    text = open(path).read()
    assert "all replicas agree" in text, f"{label}: replicas did not converge"
    pool = re.search(r"^pool\s+workers=4 log=(\d+)", text, re.M)
    assert pool, f"{label}: no pool stats line"
    got = int(pool.group(1))
    assert got == log_len, f"{label}: log={got}, expected {log_len}"
    w1 = re.search(
        r"^worker 1\s+gen=(\d+) applied=(\d+).*respawn-replayed=(\d+)", text, re.M)
    assert w1, f"{label}: no worker 1 stats line"
    gen, applied, replayed = map(int, w1.groups())
    assert gen == 1, f"{label}: worker 1 was not respawned (gen={gen})"
    assert applied == log_len, f"{label}: worker 1 applied {applied}/{log_len}"
    # Bounded recovery: the tail above the newest checkpoint is < 4 at the
    # crash, plus at most a few writes sequenced before supervision ran.
    assert replayed <= 8, \
        f"{label}: respawn replayed {replayed} entries — checkpoint not used"
    return replayed

r1 = check(sys.argv[1], "run1", 22)
r2 = check(sys.argv[2], "run2", 42)
print(f"  run1: respawn replayed {r1}/22; "
      f"run2 resumed at base 20, respawn replayed {r2}/42")
' "$snap_dir/run1" "$snap_dir/run2"
rm -rf "$snap_dir"

echo "OK: build, tests, fmt, clippy, dep hygiene, metrics + profile + trace + net + stats + snapshot smoke all green (offline)."

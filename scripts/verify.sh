#!/usr/bin/env bash
# Offline-safe verification: everything here runs with no network access.
#
# The workspace proper has zero external dependencies (DESIGN.md §7). The
# property-test and benchmark packages are excluded because they carry
# proptest/rand/criterion; run them explicitly when a registry is
# reachable:
#
#     cargo test  --manifest-path crates/proptests/Cargo.toml
#     cargo bench --manifest-path crates/bench/Cargo.toml
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (all crates)"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK: build, tests, fmt, clippy all green (offline)."

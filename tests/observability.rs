//! The observability layer end to end (DESIGN.md §9): deterministic phase
//! timings via an injected manual clock, `Engine::explain` on a Section 4
//! class session, the JSON-lines metrics export, span emission to a
//! collecting sink, fuel/eviction/invalidation counters, and their reset
//! semantics.

use polyview::obs::{CollectingSink, ManualClock};
use polyview::{Engine, Error};
use std::rc::Rc;

/// The paper's Section 4 session in miniature: raw employees, a class, and
/// a salary query over its extent.
const SESSION: &str = r#"
    val joe_raw = [Name = "Joe", Salary := 2000, Bonus := 5000];
    val joe = IDView(joe_raw);
    val anna = IDView([Name = "Anna", Salary := 3000, Bonus := 1000]);
    class Employee = class {joe, anna} end;
"#;

const SALARIES: &str = "cquery(fn s => map(fn o => query(fn x => x.Salary, o), s), Employee)";

// ----- :explain with a deterministic clock -----

#[test]
fn explain_reports_every_phase_with_injected_clock() {
    let mut e = Engine::new();
    // Every clock read advances 100ns, so each phase span measures exactly
    // 100ns — deterministically non-zero.
    e.set_clock(Rc::new(ManualClock::with_step(100)));
    e.exec(SESSION).expect("session defines");

    let report = e.explain(SALARIES).expect("explains");
    assert!(!report.cached_before, "first sight of this statement");
    assert_eq!(report.rendered, "{2000, 3000}");
    assert_eq!(report.scheme.to_string(), "{int}");

    assert_eq!(report.parse_ns, 100, "parse span = one clock step");
    assert_eq!(report.infer_ns, 100, "infer span = one clock step");
    assert_eq!(report.translate_ns, 100, "translate span = one clock step");
    assert_eq!(report.eval_ns, 100, "eval span = one clock step");

    assert!(report.tokens > 0, "statement lexes to tokens");
    assert!(report.nodes > 0, "statement parses to nodes");
    assert!(report.unify_steps > 0, "inference unifies");
    assert!(report.instantiations > 0, "map/query uses are instantiated");
    assert!(
        report.translated_size > 0,
        "Fig. 3/5 translation has a size"
    );
    assert!(
        report.translated_size > report.nodes,
        "the translation encoding grows the term"
    );
    assert!(report.fuel_consumed > 0, "evaluation burns fuel");

    // The explain run cached the compilation: a second explain sees it,
    // and recompiling still reports fresh per-statement (not cumulative)
    // counter deltas.
    let again = e.explain(SALARIES).expect("explains again");
    assert!(again.cached_before, "second sight is cached");
    assert_eq!(again.unify_steps, report.unify_steps);
    assert_eq!(again.fuel_consumed, report.fuel_consumed);

    // ...and a plain eval_expr now hits the cache.
    let before = e.stats();
    e.eval_to_string(SALARIES).expect("runs");
    let after = e.stats();
    assert_eq!(after.stmt_cache_hits, before.stmt_cache_hits + 1);
    assert_eq!(after.parses, before.parses, "cache hit does not parse");

    let text = report.to_string();
    for needle in ["parse", "infer", "translate", "eval", "100ns", "fuel="] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

// ----- stats snapshot and reset -----

#[test]
fn stats_cover_all_layers_and_reset() {
    let mut e = Engine::new();
    e.exec(SESSION).expect("defines");
    e.eval_to_string(SALARIES).expect("runs");

    let s = e.stats();
    assert!(s.parses >= 2);
    assert!(s.inferences >= 4);
    assert!(s.tokens_lexed > 0);
    assert!(s.nodes_parsed > 0);
    assert!(s.unify_steps > 0);
    assert!(s.occurs_checks > 0);
    assert!(s.instantiations > 0);
    assert!(s.fuel_consumed > 0);
    assert!(s.records_allocated >= 2, "two raw employee records");
    assert!(s.sets_allocated > 0, "class extents build sets");

    e.reset_stats();
    assert_eq!(e.stats(), polyview::EngineStats::default());

    // Counters keep working after the reset (handles stay live).
    e.eval_to_string("1 + 1").expect("runs");
    let s2 = e.stats();
    assert_eq!(s2.parses, 1);
    assert!(s2.fuel_consumed > 0);
}

#[test]
fn fuel_consumed_is_monotone_and_resets() {
    let mut e = Engine::new();
    e.exec(SESSION).expect("defines");
    let mut last = 0;
    for _ in 0..5 {
        e.eval_to_string(SALARIES).expect("runs");
        let now = e.stats().fuel_consumed;
        assert!(now > last, "every run burns fuel: {now} vs {last}");
        last = now;
    }
    e.reset_stats();
    assert_eq!(e.stats().fuel_consumed, 0);
    e.eval_to_string(SALARIES).expect("runs");
    assert!(e.stats().fuel_consumed > 0);
    assert!(
        e.stats().fuel_consumed < last,
        "post-reset tally restarts from zero"
    );
}

// ----- statement-cache eviction edge cases -----

#[test]
fn capacity_zero_evicts_everything_and_disables_caching() {
    let mut e = Engine::new();
    e.eval_to_string("1 + 1").expect("runs");
    e.eval_to_string("2 + 2").expect("runs");
    assert_eq!(e.stmt_cache_len(), 2);

    e.set_stmt_cache_capacity(0);
    assert_eq!(e.stmt_cache_len(), 0);
    assert_eq!(e.stats().stmt_cache_evictions, 2);

    // With caching disabled every repeat recompiles (misses, no hits, no
    // further evictions) and nothing panics.
    let before = e.stats();
    e.eval_to_string("1 + 1").expect("runs");
    e.eval_to_string("1 + 1").expect("runs");
    let after = e.stats();
    assert_eq!(after.stmt_cache_hits, before.stmt_cache_hits);
    assert_eq!(after.stmt_cache_misses, before.stmt_cache_misses + 2);
    assert_eq!(after.stmt_cache_evictions, before.stmt_cache_evictions);
    assert_eq!(e.stmt_cache_len(), 0);
}

#[test]
fn capacity_shrink_below_len_evicts_oldest_first() {
    let mut e = Engine::new();
    for src in ["1", "2", "3", "4"] {
        e.eval_to_string(src).expect("runs");
    }
    assert_eq!(e.stmt_cache_len(), 4);
    // Refresh "1" so it is no longer the oldest.
    e.eval_to_string("1").expect("runs");

    e.set_stmt_cache_capacity(2);
    assert_eq!(e.stmt_cache_len(), 2);
    assert_eq!(e.stats().stmt_cache_evictions, 2);

    // "2" and "3" (oldest) were evicted; "1" and "4" survive as hits.
    let before = e.stats();
    e.eval_to_string("1").expect("runs");
    e.eval_to_string("4").expect("runs");
    assert_eq!(e.stats().stmt_cache_hits, before.stmt_cache_hits + 2);
    let before = e.stats();
    e.eval_to_string("2").expect("runs");
    e.eval_to_string("3").expect("runs");
    assert_eq!(e.stats().stmt_cache_misses, before.stmt_cache_misses + 2);
}

#[test]
fn lru_pressure_evictions_are_counted() {
    let mut e = Engine::new();
    e.set_stmt_cache_capacity(2);
    for src in ["1", "2", "3", "4"] {
        e.eval_to_string(src).expect("runs");
    }
    // Inserting 3 evicted 1; inserting 4 evicted 2.
    assert_eq!(e.stats().stmt_cache_evictions, 2);
    assert_eq!(e.stmt_cache_len(), 2);
}

// ----- StalePrepared interleavings and dependency invalidations -----

#[test]
fn prepared_survives_mutations_and_unrelated_declarations() {
    let mut e = Engine::new();
    e.exec(SESSION).expect("defines");
    let p = e.prepare(SALARIES).expect("compiles");
    assert_eq!(e.run_to_string(&p).expect("runs"), "{2000, 3000}");

    // insert / delete / update are expression-level effects: the prepared
    // query stays valid and observes the new state.
    e.eval_to_string("insert(Employee, IDView([Name = \"Cy\", Salary := 4000, Bonus := 0]))")
        .expect("insert");
    assert_eq!(e.run_to_string(&p).expect("runs"), "{2000, 3000, 4000}");
    e.eval_to_string("update(joe_raw, Salary, 2500)")
        .expect("update");
    assert_eq!(e.run_to_string(&p).expect("runs"), "{2500, 3000, 4000}");
    e.eval_to_string("delete(Employee, joe)").expect("delete");
    assert_eq!(e.run_to_string(&p).expect("runs"), "{3000, 4000}");
    assert_eq!(e.stats().epoch_invalidations, 0);

    // Declarations of names the query never mentions leave it valid too —
    // staleness is per dependency, not per global epoch.
    e.exec("val unrelated = 1;").expect("declares");
    e.exec("fun twice x = x + x;").expect("declares");
    e.exec("class Dept = class {} end;").expect("declares");
    assert_eq!(e.run_to_string(&p).expect("still fresh"), "{3000, 4000}");
    assert_eq!(e.stats().epoch_invalidations, 0);

    // Rebinding a dependency makes it stale.
    e.exec("class Employee = class {} end;").expect("rebinds");
    assert!(matches!(e.run(&p), Err(Error::StalePrepared)));
    assert_eq!(e.stats().epoch_invalidations, 1);
}

#[test]
fn each_declaration_kind_invalidates_prepared_when_it_rebinds_a_dep() {
    // Each kind rebinding a dependency of the prepared query (`Employee`
    // and `sel`) invalidates; the same kinds binding fresh names do not.
    let query = "cquery(fn s => map(sel, s), Employee)";
    let rebinding = [
        "val Employee = 1;",
        "fun sel o = o;",
        "class Employee = class {} end;",
    ];
    for decl in rebinding {
        let mut e = Engine::new();
        e.exec(SESSION).expect("defines");
        e.exec("fun sel o = query(fn x => x.Salary, o);")
            .expect("defines sel");
        let p = e.prepare(query).expect("compiles");
        e.run(&p).expect("fresh runs");
        e.exec(decl).expect("declares");
        assert!(
            matches!(e.run(&p), Err(Error::StalePrepared)),
            "{decl} must invalidate"
        );
        assert_eq!(e.stats().epoch_invalidations, 1, "after {decl}");
    }

    let unrelated = ["val v = 1;", "fun f x = x;", "class C = class {} end;"];
    for decl in unrelated {
        let mut e = Engine::new();
        e.exec(SESSION).expect("defines");
        e.exec("fun sel o = query(fn x => x.Salary, o);")
            .expect("defines sel");
        let p = e.prepare(query).expect("compiles");
        e.run(&p).expect("fresh runs");
        e.exec(decl).expect("declares");
        e.run(&p)
            .unwrap_or_else(|err| panic!("{decl} must not invalidate: {err}"));
        assert_eq!(e.stats().epoch_invalidations, 0, "after {decl}");
    }
}

#[test]
fn stale_cache_entries_count_as_dep_invalidations() {
    let mut e = Engine::new();
    e.exec(SESSION).expect("defines");
    e.eval_to_string(SALARIES).expect("fills cache");

    // An unrelated declaration leaves the cached compilation warm.
    e.exec("val unrelated = 1;").expect("declares");
    let before = e.stats();
    e.eval_to_string(SALARIES).expect("hits");
    let after = e.stats();
    assert_eq!(after.stmt_cache_hits, before.stmt_cache_hits + 1);
    assert_eq!(
        after.stmt_cache_dep_invalidations,
        before.stmt_cache_dep_invalidations
    );

    // Rebinding a dependency drops the entry: dep-invalidation + miss, and
    // `epoch_invalidations` (explicit stale `run`s) stays untouched.
    e.exec("class Employee = class {} end;")
        .expect("rebinds a dep");
    let before = e.stats();
    e.eval_to_string(SALARIES).expect("recompiles");
    let after = e.stats();
    assert_eq!(
        after.stmt_cache_dep_invalidations,
        before.stmt_cache_dep_invalidations + 1
    );
    assert_eq!(after.stmt_cache_misses, before.stmt_cache_misses + 1);
    assert_eq!(after.stmt_cache_hits, before.stmt_cache_hits);
    assert_eq!(after.epoch_invalidations, before.epoch_invalidations);
}

// ----- metrics export -----

#[test]
fn metrics_json_is_one_object_per_line_and_mirrors_layers() {
    let mut e = Engine::new();
    e.exec(SESSION).expect("defines");
    e.eval_to_string(SALARIES).expect("runs");

    let out = e.metrics_json();
    assert!(!out.is_empty());
    for line in out.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object: {line}"
        );
        assert!(!line[1..line.len() - 1].contains('\n'));
    }
    let s = e.stats();
    assert!(out.contains(&format!(
        "{{\"kind\":\"counter\",\"name\":\"engine.parses\",\"value\":{}}}",
        s.parses
    )));
    assert!(out.contains(&format!(
        "{{\"kind\":\"counter\",\"name\":\"types.unify_steps\",\"value\":{}}}",
        s.unify_steps
    )));
    assert!(out.contains(&format!(
        "{{\"kind\":\"counter\",\"name\":\"eval.fuel_consumed\",\"value\":{}}}",
        s.fuel_consumed
    )));
    assert!(out.contains("\"name\":\"phase.parse_ns\""));
    assert!(out.contains("\"name\":\"phase.eval_ns\""));
}

// ----- span emission -----

#[test]
fn trace_sink_collects_phase_spans_only_when_enabled() {
    let mut e = Engine::new();
    e.set_clock(Rc::new(ManualClock::with_step(7)));
    let sink = Rc::new(CollectingSink::new());
    e.set_trace_sink(sink.clone());

    e.eval_to_string("1 + 2").expect("runs");
    let spans = sink.take();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["parse", "infer", "lower", "eval"]);
    assert!(spans.iter().all(|s| s.dur_ns == 7), "manual clock steps");
    let eval_span = &spans[3];
    assert!(
        eval_span.attrs.iter().any(|(k, v)| k == "fuel" && *v > 0),
        "eval span carries a fuel attribute: {:?}",
        eval_span.attrs
    );

    // Disabled tracing emits nothing, but metrics keep accruing.
    e.set_tracing(false);
    let before = e.stats();
    e.eval_to_string("2 + 3").expect("runs");
    assert!(sink.is_empty(), "disabled tracer must not emit");
    assert!(e.stats().fuel_consumed > before.fuel_consumed);
}

#[test]
fn fresh_engine_collects_no_spans() {
    let mut e = Engine::new();
    assert!(!e.tracing_enabled(), "tracing is opt-in");
    e.eval_to_string("1 + 1").expect("runs");
    // Timings still land in the histograms even with the null sink.
    assert!(e.metrics_json().contains("\"name\":\"phase.eval_ns\""));
}

//! The compile-once/run-many pipeline end to end: `Engine::prepare`/`run`,
//! the LRU statement cache behind `eval_to_string` and the `Database`
//! facade, staleness across declarations, interaction with mutating
//! `insert`/`delete` (including `Machine::enable_extent_cache` epochs), and
//! the removal of the source-splicing hazard.

use polyview::{Database, Engine, Error};

fn staff_db() -> Database {
    let mut db = Database::new();
    db.exec(
        "class Staff = class {} end;\n\
         insert(Staff, IDView([Name = \"Alice\", Age = 40]));\n\
         insert(Staff, IDView([Name = \"Bob\", Age = 50]));",
    )
    .expect("setup");
    db
}

const NAMES_FN: &str = "fn s => map(fn o => query(fn x => x.Name, o), s)";

// ----- Engine::prepare / Engine::run -----

#[test]
fn prepare_once_run_many() {
    let mut e = Engine::new();
    e.exec("val x = 20;").expect("defines");
    let p = e.prepare("x + x + 2").expect("compiles");
    assert_eq!(p.src(), Some("x + x + 2"));
    assert_eq!(p.scheme().to_string(), "int");
    let before = e.stats();
    for _ in 0..100 {
        assert_eq!(e.run_to_string(&p).expect("runs"), "42");
    }
    let after = e.stats();
    assert_eq!(after.parses, before.parses, "run must never parse");
    assert_eq!(after.inferences, before.inferences, "run must never infer");
}

#[test]
fn prepared_observes_mutable_state() {
    let mut e = Engine::new();
    e.exec("val cell = [n := 0];").expect("defines");
    let bump = e.prepare("update(cell, n, cell.n + 1)").expect("compiles");
    let read = e.prepare("cell.n").expect("compiles");
    for expected in 1..=5 {
        e.run(&bump).expect("bump");
        assert_eq!(e.run_to_string(&read).expect("read"), expected.to_string());
    }
}

#[test]
fn prepared_goes_stale_across_declarations() {
    let mut e = Engine::new();
    e.exec("val x = 1;").expect("defines");
    let p = e.prepare("x + 1").expect("compiles");
    assert_eq!(e.run_to_string(&p).expect("runs"), "2");
    // Re-declaring x (possibly at a different type!) invalidates p.
    e.exec("val x = \"shadowed\";").expect("redefines");
    let err = e.run(&p).expect_err("stale");
    assert!(err.is_stale_prepared(), "got {err:?}");
    // Re-preparing picks up the new binding (and its new type).
    let p2 = e.prepare("x ^ \"!\"").expect("recompiles");
    assert_eq!(e.run_to_string(&p2).expect("runs"), "\"shadowed!\"");
}

#[test]
fn prepared_survives_inserts_and_deletes() {
    // insert/delete are expression-level effects, not declarations: a
    // prepared query stays valid and reads the *current* extent.
    let mut e = Engine::new();
    e.exec(
        "class Staff = class {} end;\n\
         val eve = IDView([Name = \"Eve\"]);",
    )
    .expect("setup");
    let count = e
        .prepare("cquery(fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0), Staff)")
        .expect("compiles");
    assert_eq!(e.run_to_string(&count).expect("runs"), "0");
    e.eval_to_string("insert(Staff, eve)").expect("insert");
    assert_eq!(e.run_to_string(&count).expect("runs"), "1");
    e.eval_to_string("delete(Staff, eve)").expect("delete");
    assert_eq!(e.run_to_string(&count).expect("runs"), "0");
}

#[test]
fn translation_is_computed_on_demand() {
    let mut e = Engine::new();
    let p = e
        .prepare("query(fn x => x.Name, IDView([Name = \"Joe\"]))")
        .expect("compiles");
    let t = p.translation();
    // The Fig. 3 translation eliminates the view layer: no `query` node
    // survives, and repeated requests return the same cached term.
    assert!(!format!("{t}").contains("query"), "got {t}");
    assert_eq!(format!("{}", p.translation()), format!("{t}"));
}

// ----- the engine statement cache -----

#[test]
fn repeated_eval_to_string_hits_the_cache() {
    let mut e = Engine::new();
    e.exec("val x = 41;").expect("defines");
    assert_eq!(e.eval_to_string("x + 1").expect("cold"), "42");
    let warm = e.stats();
    for _ in 0..10 {
        assert_eq!(e.eval_to_string("x + 1").expect("warm"), "42");
    }
    let after = e.stats();
    assert_eq!(after.parses, warm.parses);
    assert_eq!(after.inferences, warm.inferences);
    assert_eq!(after.stmt_cache_hits, warm.stmt_cache_hits + 10);
}

#[test]
fn declarations_invalidate_cached_statements() {
    let mut e = Engine::new();
    e.exec("val x = 1;").expect("defines");
    assert_eq!(e.eval_to_string("x").expect("cold"), "1");
    e.exec("val x = 2;").expect("redefines");
    // The cached compiled form is stale; it must be recompiled, not reused.
    let before = e.stats();
    assert_eq!(e.eval_to_string("x").expect("recompiled"), "2");
    let after = e.stats();
    assert_eq!(after.stmt_cache_misses, before.stmt_cache_misses + 1);
}

#[test]
fn lru_eviction_recompiles_evicted_statements() {
    let mut e = Engine::new();
    e.set_stmt_cache_capacity(2);
    e.eval_to_string("1 + 1").expect("a");
    e.eval_to_string("2 + 2").expect("b");
    e.eval_to_string("1 + 1").expect("refresh a");
    e.eval_to_string("3 + 3").expect("c evicts b");
    assert_eq!(e.stmt_cache_len(), 2);
    let before = e.stats();
    e.eval_to_string("2 + 2").expect("b again: recompiled");
    let mid = e.stats();
    assert_eq!(mid.stmt_cache_misses, before.stmt_cache_misses + 1);
    // Re-inserting b evicted the then-least-recently-used entry, a,
    // keeping c: c still hits, a must recompile.
    e.eval_to_string("3 + 3").expect("c still cached");
    let after = e.stats();
    assert_eq!(after.stmt_cache_hits, mid.stmt_cache_hits + 1);
    e.eval_to_string("1 + 1").expect("a recompiled");
    let last = e.stats();
    assert_eq!(last.stmt_cache_misses, after.stmt_cache_misses + 1);
}

#[test]
fn zero_capacity_is_the_cold_path() {
    let mut e = Engine::new();
    e.set_stmt_cache_capacity(0);
    e.eval_to_string("1 + 1").expect("a");
    e.eval_to_string("1 + 1").expect("a again");
    let s = e.stats();
    assert_eq!(s.stmt_cache_hits, 0);
    assert_eq!(s.stmt_cache_misses, 2);
    assert_eq!(e.stmt_cache_len(), 0);
}

// ----- the Database facade on the prepared pipeline -----

#[test]
fn database_query_compiles_once_for_many_calls() {
    let mut db = staff_db();
    assert_eq!(
        db.query("Staff", NAMES_FN).expect("cold"),
        "{\"Alice\", \"Bob\"}"
    );
    let warm = db.engine().stats();
    for _ in 0..1000 {
        db.query("Staff", NAMES_FN).expect("warm");
    }
    let after = db.engine().stats();
    assert_eq!(after.parses, warm.parses, "warm queries must not parse");
    assert_eq!(
        after.inferences, warm.inferences,
        "warm queries must not infer"
    );
    assert_eq!(after.stmt_cache_hits, warm.stmt_cache_hits + 1000);
}

#[test]
fn database_query_reflects_mutations_between_calls() {
    let mut db = staff_db();
    assert_eq!(
        db.query("Staff", NAMES_FN).expect("q"),
        "{\"Alice\", \"Bob\"}"
    );
    db.exec("val carol = IDView([Name = \"Carol\", Age = 30]);")
        .expect("defines");
    db.insert("Staff", "carol").expect("insert");
    assert_eq!(
        db.query("Staff", NAMES_FN).expect("q"),
        "{\"Alice\", \"Bob\", \"Carol\"}"
    );
    db.delete("Staff", "carol").expect("delete");
    assert_eq!(
        db.query("Staff", NAMES_FN).expect("q"),
        "{\"Alice\", \"Bob\"}"
    );
}

#[test]
fn database_query_respects_extent_cache_epochs() {
    // With the opt-in extent cache on, a cached cquery statement must still
    // see every insert/delete: the machine's class epoch invalidates the
    // extent cache independently of the statement cache.
    let mut db = staff_db();
    db.engine().machine().enable_extent_cache(true);
    assert_eq!(
        db.query("Staff", NAMES_FN).expect("q"),
        "{\"Alice\", \"Bob\"}"
    );
    // Warm both caches, then mutate.
    db.query("Staff", NAMES_FN).expect("warm");
    db.exec("val dan = IDView([Name = \"Dan\", Age = 20]);")
        .expect("defines");
    db.insert("Staff", "dan").expect("insert");
    assert_eq!(
        db.query("Staff", NAMES_FN).expect("q"),
        "{\"Alice\", \"Bob\", \"Dan\"}"
    );
    db.delete("Staff", "dan").expect("delete");
    assert_eq!(
        db.query("Staff", NAMES_FN).expect("q"),
        "{\"Alice\", \"Bob\"}"
    );
}

#[test]
fn insert_operand_cannot_change_statement_meaning() {
    // Before the AST-construction refactor this operand was spliced into
    // "insert(Staff, <obj>)" as source text. Now it must parse as one
    // complete expression: trailing syntax is a parse error and the extent
    // is untouched.
    let mut db = Database::new();
    db.exec(
        "val x = IDView([Name = \"X\"]);\n\
         class Staff = class {x} end;",
    )
    .expect("setup");
    assert_eq!(db.count("Staff").expect("count"), 1);
    let err = db
        .insert("Staff", "x)); delete(Staff, x")
        .expect_err("rejected");
    assert!(err.is_parse_error(), "got {err:?}");
    assert_eq!(db.count("Staff").expect("count"), 1, "extent unchanged");
}

#[test]
fn delete_operand_cannot_change_statement_meaning() {
    let mut db = Database::new();
    db.exec(
        "val x = IDView([Name = \"X\"]);\n\
         class Staff = class {x} end;",
    )
    .expect("setup");
    let err = db
        .delete("Staff", "x), IDView([Name = \"evil\"]")
        .expect_err("rejected");
    assert!(err.is_parse_error(), "got {err:?}");
    assert_eq!(db.count("Staff").expect("count"), 1, "extent unchanged");
}

#[test]
fn class_operand_is_a_name_not_source() {
    // The class argument becomes a variable node; a syntactically wild
    // "class name" is just an unbound variable, caught statically at
    // inference time — never reinterpreted as syntax.
    let mut db = staff_db();
    let err = db
        .query("Staff), {}", NAMES_FN)
        .expect_err("unbound variable");
    assert!(err.is_type_error(), "got {err:?}");
}

// ----- per-name dependency invalidation -----

#[test]
fn unrelated_rebind_keeps_prepared_statement_and_cache_hot() {
    let mut e = Engine::new();
    e.exec(
        "class Staff = class {} end;\n\
         insert(Staff, IDView([Name = \"Alice\", Age = 40]));",
    )
    .expect("setup");
    let query = "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)";
    let p = e.prepare(query).expect("compiles");
    assert_eq!(e.run_to_string(&p).expect("runs"), "{\"Alice\"}");
    assert_eq!(e.eval_to_string(query).expect("fills cache"), "{\"Alice\"}");

    // Rebind names the query never mentions: the prepared handle keeps
    // running and the cached compilation hits without re-inference.
    e.exec("val tick = 1;").expect("declares");
    e.exec("val tick = 2;").expect("rebinds");
    e.exec("fun helper x = x + 1;").expect("declares");
    assert_eq!(e.run_to_string(&p).expect("still fresh"), "{\"Alice\"}");
    let before = e.stats();
    assert_eq!(e.eval_to_string(query).expect("warm"), "{\"Alice\"}");
    let after = e.stats();
    assert_eq!(after.stmt_cache_hits, before.stmt_cache_hits + 1);
    assert_eq!(after.inferences, before.inferences, "no re-inference");
    assert_eq!(
        after.stmt_cache_dep_invalidations,
        before.stmt_cache_dep_invalidations
    );
    assert_eq!(after.epoch_invalidations, 0, "no stale run ever happened");
}

#[test]
fn rebinding_a_dependency_invalidates() {
    let mut e = Engine::new();
    e.exec("val base = 10;").expect("defines");
    let p = e.prepare("base + 1").expect("compiles");
    assert_eq!(e.run_to_string(&p).expect("runs"), "11");
    e.exec("val base = 20;").expect("rebinds");
    let err = e.run(&p).expect_err("stale");
    assert!(err.is_stale_prepared(), "got {err:?}");

    // The cached form of the same source is dropped and recompiled too.
    e.eval_to_string("base + 1").expect("fills cache");
    e.exec("val base = 30;").expect("rebinds");
    let before = e.stats();
    assert_eq!(e.eval_to_string("base + 1").expect("recompiles"), "31");
    let after = e.stats();
    assert_eq!(
        after.stmt_cache_dep_invalidations,
        before.stmt_cache_dep_invalidations + 1
    );
    assert_eq!(after.stmt_cache_misses, before.stmt_cache_misses + 1);
}

#[test]
fn rebinding_through_a_val_alias_invalidates_transitively() {
    // `val g = f;` records an alias edge g → f. Rebinding f must mark g
    // (and any chain built on g) stale too: a compiled statement on the
    // alias may have been specialised against the aliased binding, so
    // its cached compilation cannot outlive the source's rebind.
    let mut e = Engine::new();
    e.exec("val f = fn x => x + 1;").expect("defines");
    e.exec("val g = f;").expect("aliases");
    e.exec("val h = g;").expect("chains the alias");
    e.exec("val other = 5;").expect("unrelated");
    let on_g = e.prepare("g 1").expect("compiles");
    let on_h = e.prepare("h 1").expect("compiles");
    let on_other = e.prepare("other + 1").expect("compiles");
    assert_eq!(e.run_to_string(&on_g).expect("runs"), "2");
    assert_eq!(e.run_to_string(&on_h).expect("runs"), "2");

    // f is the only name rebound, but the staleness cascades g → f and
    // h → g → f. Unrelated statements stay warm.
    e.exec("val f = fn x => x * 10;")
        .expect("rebinds the source");
    assert!(e.run(&on_g).expect_err("alias dep").is_stale_prepared());
    assert!(
        e.run(&on_h)
            .expect_err("chained alias dep")
            .is_stale_prepared(),
        "staleness must follow the alias chain transitively"
    );
    assert_eq!(e.run_to_string(&on_other).expect("unrelated"), "6");

    // The cached-statement path invalidates the same way.
    e.eval_to_string("g 2").expect("fills cache");
    e.exec("val f = fn x => x - 1;").expect("rebinds again");
    let before = e.stats();
    e.eval_to_string("g 2").expect("recompiles");
    let after = e.stats();
    assert_eq!(
        after.stmt_cache_dep_invalidations,
        before.stmt_cache_dep_invalidations + 1,
        "alias rebind must drop the cached compilation"
    );
}

#[test]
fn alias_keeps_its_snapshot_when_the_source_is_rebound() {
    // `val g = f;` copies f's *value*. With the compile tier on, g's
    // lowered form is index-abstracted — it must still capture f's value
    // at definition time rather than re-resolve the global name on every
    // call: after f is rebound (even to a non-function), calling g must
    // behave exactly as the old f did, matching tier-off semantics.
    let mut e = Engine::new();
    assert!(e.compile_tier());
    e.exec("val f = fn p => p.Bonus;").expect("defines");
    e.exec("val g = f;").expect("aliases");
    e.exec("val f = 42;").expect("rebinds to a non-function");
    assert_eq!(
        e.eval_to_string("g [Bonus = 7, Zed = 1]").expect("runs"),
        "7",
        "alias must keep the old f's behaviour after the rebind"
    );

    // The same through a chain: h snapshots g, which snapshotted f.
    e.exec("val h = g;").expect("chains the alias");
    e.exec("val g = true;").expect("rebinds the middle");
    assert_eq!(e.eval_to_string("h [Bonus = 9]").expect("runs"), "9");
}

#[test]
fn rebinding_any_group_member_invalidates_dependents_of_each() {
    // A `fun … and …` group rebinds every member name: a statement
    // depending on *any* member goes stale, and statements depending on
    // neither stay fresh.
    let mut e = Engine::new();
    e.exec("fun f x = x + 1 and g x = x * 2;").expect("defines");
    e.exec("val other = 5;").expect("defines");
    let on_f = e.prepare("f 1").expect("compiles");
    let on_g = e.prepare("g 1").expect("compiles");
    let on_other = e.prepare("other + 1").expect("compiles");
    e.run(&on_f).expect("fresh");
    e.run(&on_g).expect("fresh");

    // Rebinding the group through *one* member's new definition still
    // rebinds both names.
    e.exec("fun f x = x and g x = x;").expect("rebinds group");
    assert!(e.run(&on_f).expect_err("f dep").is_stale_prepared());
    assert!(e.run(&on_g).expect_err("g dep").is_stale_prepared());
    assert_eq!(
        e.run_to_string(&on_other).expect("unrelated stays fresh"),
        "6"
    );
}

// ----- fun groups elaborate once -----

#[test]
fn fun_group_is_elaborated_once_regardless_of_size() {
    for src in [
        "fun f1 n = n + 1;",
        "fun f1 n = f2 n and f2 n = n;",
        "fun f1 n = f2 n and f2 n = f3 n and f3 n = f4 n and f4 n = n;",
    ] {
        let mut e = Engine::new();
        let before = e.stats();
        e.exec(src).expect("defines");
        let after = e.stats();
        assert_eq!(
            after.inferences,
            before.inferences + 1,
            "group must be inferred exactly once: {src}"
        );
    }
}

#[test]
fn fun_group_bindings_stay_polymorphic_and_mutually_recursive() {
    let mut e = Engine::new();
    e.exec(
        "fun even n = if n = 0 then true else odd (n - 1) \
         and odd n = if n = 0 then false else even (n - 1) \
         and apply f x = f x;",
    )
    .expect("defines");
    assert_eq!(e.eval_to_string("even 10").expect("runs"), "true");
    assert_eq!(e.eval_to_string("apply odd 9").expect("runs"), "true");
    assert_eq!(
        e.eval_to_string("apply (fn s => s ^ \"!\") \"hi\"")
            .expect("runs"),
        "\"hi!\""
    );
}

// ----- error taxonomy -----

#[test]
fn stale_prepared_is_its_own_error() {
    let err = Error::StalePrepared;
    assert!(err.is_stale_prepared());
    assert!(!err.is_type_error() && !err.is_parse_error() && !err.is_runtime_error());
    assert!(err.to_string().contains("stale prepared statement"));
}

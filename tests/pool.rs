//! Tier-1 tests for the serving layer (`crates/pool`, DESIGN.md §10).
//!
//! Everything here is deterministic and std-only: pauses use the pool's
//! gate hook (no sleeps), crashes use the injection hook (the thread is
//! dead before the call returns), and convergence is checked by probing
//! every replica for the same query after a barrier.

use polyview_pool::{Pool, PoolConfig, PoolError, StmtClass, Submit};

const NAMES_QUERY: &str = "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)";

fn small_pool(workers: usize) -> Pool {
    // Small queues so backpressure is reachable; default stack/fuel.
    Pool::new(PoolConfig::default().workers(workers).queue_capacity(8))
}

/// After any interleaving of writes from two sessions, all replicas have
/// the same declaration epoch and answer queries identically — the
/// declaration log imposes one total order on writes, and replay is
/// deterministic.
#[test]
fn interleaved_writes_converge_on_all_replicas() {
    let mut pool = small_pool(4);
    let (alice, bob) = (11, 22);

    pool.run(alice, "class Staff = class {} end;")
        .expect("class");
    // Interleave writes from two sessions (their affinity workers differ
    // or coincide — either way the log sequences them).
    for i in 0..6 {
        let (session, name) = if i % 2 == 0 {
            (alice, format!("A{i}"))
        } else {
            (bob, format!("B{i}"))
        };
        pool.run(
            session,
            &format!("insert(Staff, IDView([Name = \"{name}\"]))"),
        )
        .expect("insert");
    }
    pool.run(bob, "val answer = 42;").expect("val");

    let applied = pool.barrier().expect("barrier");
    assert_eq!(applied.len(), 4);
    assert!(applied.iter().all(|&a| a == pool.log_len()));

    // Every replica answers the same query with the same rendering…
    let expected = pool.probe_worker(0, NAMES_QUERY).expect("probe");
    assert!(
        expected.contains("A0") && expected.contains("B5"),
        "{expected}"
    );
    for w in 1..pool.worker_count() {
        assert_eq!(pool.probe_worker(w, NAMES_QUERY).expect("probe"), expected);
    }
    for w in 0..pool.worker_count() {
        assert_eq!(pool.probe_worker(w, "answer").expect("probe"), "42");
    }

    // …and reports the same declaration epoch.
    let stats = pool.stats();
    let epochs: Vec<u64> = stats.per_worker.iter().map(|w| w.env_epoch).collect();
    assert_eq!(epochs.len(), 4);
    assert!(
        epochs.windows(2).all(|p| p[0] == p[1]),
        "replicas diverged: {epochs:?}"
    );
    pool.shutdown();
}

/// A session sees its own writes immediately: reads carry the log length
/// observed at submit time, so the serving replica catches up first (and
/// session affinity keeps the session on one warmed replica throughout).
#[test]
fn read_your_writes_under_session_affinity() {
    let mut pool = small_pool(3);
    let session = 7;
    let affinity = pool.worker_for(session);

    pool.run(session, "val x = 1;").expect("write");
    assert_eq!(pool.run(session, "x").expect("read"), "1");

    for i in 2..6 {
        let t = pool
            .submit_write(session, &format!("val x = {i};"))
            .expect("classified")
            .queued()
            .expect("queued");
        assert_eq!(t.worker(), affinity, "writes follow session affinity");
        t.wait().expect("write applies");
        let r = pool
            .submit_read(session, "x")
            .expect("classified")
            .queued()
            .expect("queued");
        assert_eq!(r.worker(), affinity, "reads follow session affinity");
        assert_eq!(r.wait().expect("read"), i.to_string());
    }
    pool.shutdown();
}

/// A full queue reports `Submit::Full` instead of queueing unboundedly,
/// and clears once the worker drains.
#[test]
fn backpressure_reports_full_on_a_full_queue() {
    let mut pool = Pool::new(PoolConfig::default().workers(1).queue_capacity(2));
    let session = 1;
    assert_eq!(pool.worker_for(session), 0);

    // Warm the replica, then hold it inside a pause request so nothing
    // dequeues — deterministic, no timing.
    pool.run(session, "val y = 10;").expect("write");
    let gate = pool.pause_worker(0).expect("pause");

    // Fill the queue to capacity, then observe backpressure.
    let mut tickets = Vec::new();
    loop {
        match pool.submit_read(session, "y + 1").expect("classified") {
            Submit::Queued(t) => tickets.push(t),
            Submit::Full => break,
        }
        assert!(tickets.len() <= 2, "queue accepted more than its capacity");
    }
    assert!(pool
        .submit_read(session, "y + 1")
        .expect("classified")
        .is_full());
    // Writes are backpressured too — and a rejected write is NOT
    // sequenced: the log must not grow.
    let log_before = pool.log_len();
    assert!(pool
        .submit_write(session, "val y = 99;")
        .expect("classified")
        .is_full());
    assert_eq!(pool.log_len(), log_before);

    // `stats_local` never messages workers, so it is safe while one is
    // paused with a full queue.
    let stats = pool.stats_local();
    assert!(stats.rejected_full >= 2, "got {}", stats.rejected_full);

    // Release the worker: every queued ticket resolves.
    gate.release();
    for t in tickets {
        assert_eq!(t.wait().expect("drained"), "11");
    }
    assert_eq!(pool.run(session, "y + 1").expect("after drain"), "11");
    pool.shutdown();
}

/// A panicked worker is respawned and catches up by replaying the log from
/// offset 0: it converges to the same state as its peers, and the respawn
/// is counted in pool stats.
#[test]
fn worker_panic_respawns_and_replays() {
    let mut pool = small_pool(2);
    let session = 5;
    pool.run(session, "class Staff = class {} end;")
        .expect("class");
    pool.run(session, "insert(Staff, IDView([Name = \"Eve\"]))")
        .expect("insert");
    pool.run(session, "val marker = 123;").expect("val");
    pool.barrier().expect("barrier");

    pool.inject_worker_panic(0);

    // The next interaction respawns worker 0; the barrier then waits for
    // its full replay.
    let applied = pool.barrier().expect("barrier after crash");
    assert!(applied.iter().all(|&a| a == pool.log_len()));
    let stats = pool.stats();
    assert_eq!(stats.respawns, 1);
    let w0 = stats.per_worker.iter().find(|w| w.worker == 0).expect("w0");
    assert_eq!(w0.generation, 1, "respawned slot bumps its generation");
    assert_eq!(w0.replay_lag, 0);

    // The respawned replica answers exactly like the survivor.
    let fresh = pool.probe_worker(0, NAMES_QUERY).expect("respawned");
    let survivor = pool.probe_worker(1, NAMES_QUERY).expect("survivor");
    assert_eq!(fresh, survivor);
    assert_eq!(pool.probe_worker(0, "marker").expect("probe"), "123");
    pool.shutdown();
}

/// An in-flight request on a crashed worker resolves to `WorkerLost`
/// rather than hanging, and a resubmit succeeds against the respawn.
#[test]
fn inflight_request_on_crashed_worker_reports_worker_lost() {
    let mut pool = Pool::new(PoolConfig::default().workers(1).queue_capacity(4));
    let session = 3;
    pool.run(session, "val z = 9;").expect("write");

    // Hold the worker inside a pause, queue a crash *ahead of* the read,
    // then release: the worker dequeues Crash first and dies with the read
    // still queued — its reply sender drops with the queue.
    let gate = pool.pause_worker(0).expect("pause");
    assert!(pool.queue_worker_panic(0), "crash queued");
    let stuck = pool
        .submit_read(session, "z")
        .expect("classified")
        .queued()
        .expect("queued");
    gate.release();
    pool.await_worker_exit(0);
    assert!(
        stuck.wait().expect_err("lost").is_worker_lost(),
        "queued request behind a crash resolves to WorkerLost"
    );

    // Respawn + replay: state is intact.
    assert_eq!(pool.run(session, "z").expect("resubmit"), "9");
    assert_eq!(pool.stats().respawns, 1);
    pool.shutdown();
}

/// The declared-function escape is closed: a bare call of a previously
/// declared effectful function contains no `insert` node syntactically,
/// but the pool's effect set knows the name and routes it as a write —
/// sequenced through the log and applied on every replica, never executed
/// on a single one.
#[test]
fn effectful_function_calls_are_sequenced_as_writes() {
    let mut pool = small_pool(3);
    let s = 1;
    pool.run(s, "class Staff = class {} end;").expect("class");
    pool.run(s, "fun add x = insert(Staff, x);").expect("fun");

    // submit_read rejects the call before anything is enqueued…
    let call = "add(IDView([Name = \"Zoe\"]))";
    assert!(pool
        .submit_read(s, call)
        .expect_err("misrouted")
        .is_misrouted());
    // …and so does probe_worker (serving it on one replica would diverge
    // the pool).
    assert!(pool
        .probe_worker(0, call)
        .expect_err("probe")
        .is_misrouted());

    // The auto-routing path sequences it.
    let before = pool.log_len();
    pool.run(s, call).expect("effectful call");
    assert_eq!(pool.log_len(), before + 1, "the call went through the log");

    // Aliases propagate effectfulness: `val add2 = add;` marks add2.
    pool.run(s, "val add2 = add;").expect("alias");
    pool.run(s, "add2(IDView([Name = \"Ida\"]))")
        .expect("aliased call");

    pool.barrier().expect("barrier");
    let expected = pool.probe_worker(0, NAMES_QUERY).expect("probe");
    assert!(
        expected.contains("Zoe") && expected.contains("Ida"),
        "{expected}"
    );
    for w in 1..pool.worker_count() {
        assert_eq!(
            pool.probe_worker(w, NAMES_QUERY).expect("probe"),
            expected,
            "replica {w} diverged"
        );
    }
    pool.shutdown();
}

/// A write lost in flight was sequenced *before* it was enqueued, so the
/// respawned worker replays it from the log: the error carries the offset
/// (`sequenced: Some(_)`) and the caller must NOT resubmit — the effect
/// lands exactly once without it.
#[test]
fn lost_write_is_already_sequenced_and_still_applies() {
    let mut pool = Pool::new(PoolConfig::default().workers(1).queue_capacity(4));
    let s = 2;
    pool.run(s, "class Staff = class {} end;").expect("class");

    // Hold the worker, queue a crash, then sequence a write *behind* the
    // crash: the worker dies with the write still queued.
    let gate = pool.pause_worker(0).expect("pause");
    assert!(pool.queue_worker_panic(0), "crash queued");
    let t = pool
        .submit_write(s, "insert(Staff, IDView([Name = \"Ada\"]))")
        .expect("classified")
        .queued()
        .expect("queued");
    let offset = t.sequenced().expect("write tickets carry their offset");
    assert_eq!(offset + 1, pool.log_len());
    gate.release();
    pool.await_worker_exit(0);
    let err = t.wait().expect_err("lost");
    assert_eq!(
        err,
        PoolError::WorkerLost {
            sequenced: Some(offset)
        }
    );

    // No resubmit: the respawn's replay applies the sequenced write.
    // Exactly one Ada — resubmitting would have produced two.
    pool.barrier().expect("barrier");
    assert_eq!(
        pool.probe_worker(0, NAMES_QUERY).expect("probe"),
        "{\"Ada\"}"
    );
    assert_eq!(pool.stats().respawns, 1);
    pool.shutdown();
}

/// Misrouted statements are rejected by classification — the single
/// source of truth (`polyview::classify`) — before anything is enqueued
/// or sequenced.
#[test]
fn classification_guards_the_entry_points() {
    let mut pool = small_pool(2);
    let err = pool
        .submit_read(1, "val x = 1;")
        .expect_err("write as read");
    assert_eq!(
        err,
        PoolError::Misrouted {
            expected: StmtClass::Read,
            got: StmtClass::Write
        }
    );
    let err = pool.submit_write(1, "1 + 1").expect_err("read as write");
    assert!(err.is_misrouted());
    assert_eq!(pool.log_len(), 0, "nothing was sequenced");

    // Parse errors surface at submit, engine errors through the ticket.
    assert!(pool.submit(1, "val = 3").expect_err("parse").is_parse());
    let t = pool
        .submit(1, "1 + true")
        .expect("classified")
        .queued()
        .unwrap();
    assert!(t.wait().expect_err("type error").is_type());
    pool.shutdown();
}

/// Deterministic failures replay identically: an entry that fails on one
/// replica fails on all of them, and replicas stay converged afterwards.
#[test]
fn failing_writes_replay_deterministically() {
    let mut pool = small_pool(3);
    pool.run(1, "class Staff = class {} end;").expect("class");
    // `update` on an immutable field classifies as a write and fails to
    // type-check — on every replica equally.
    pool.run(1, "val r = [Name = \"Joe\"];").expect("val");
    let err = pool
        .run(1, "update(r, Name, \"P\")")
        .expect_err("type error");
    assert!(err.is_type(), "got {err:?}");
    pool.barrier().expect("barrier");

    let stats = pool.stats();
    let errors: Vec<u64> = stats.per_worker.iter().map(|w| w.replay_errors).collect();
    assert!(
        errors.windows(2).all(|p| p[0] == p[1]),
        "replicas disagree on replay errors: {errors:?}"
    );
    let epochs: Vec<u64> = stats.per_worker.iter().map(|w| w.env_epoch).collect();
    assert!(epochs.windows(2).all(|p| p[0] == p[1]), "{epochs:?}");
    pool.shutdown();
}

/// Shutdown drains and joins every worker without deadlock — including
/// with queued work — and dropping a pool does the same.
#[test]
fn clean_shutdown_with_queued_work() {
    let mut pool = small_pool(4);
    pool.run(9, "val v = 5;").expect("write");
    let mut tickets = Vec::new();
    for _ in 0..16 {
        if let Submit::Queued(t) = pool.submit_read(9, "v * v").expect("classified") {
            tickets.push(t);
        }
    }
    pool.shutdown(); // joins; queued requests were served or dropped
    for t in tickets {
        match t.wait() {
            Ok(v) => assert_eq!(v, "25"),
            Err(e) => assert_eq!(e, PoolError::WorkerLost { sequenced: None }),
        }
    }

    // Drop-based shutdown must not hang either.
    let mut pool = small_pool(2);
    pool.run(1, "val w = 1;").expect("write");
    drop(pool);
}

/// Pool metrics merge every replica's registry: pool gauges, merged
/// engine counters, and per-worker namespaced lines, one JSON object per
/// line.
#[test]
fn pool_metrics_are_aggregated_json_lines() {
    let mut pool = small_pool(2);
    pool.run(4, "val m = 2;").expect("write");
    pool.run(4, "m + m").expect("read");
    pool.barrier().expect("barrier");

    let out = pool.metrics_json();
    for line in out.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    for needle in [
        "\"name\":\"pool.workers\",\"value\":2",
        "\"name\":\"pool.submitted_reads\"",
        "\"name\":\"pool.worker0.replay_lag\"",
        "\"name\":\"pool.worker1.queue_depth\"",
        "\"name\":\"engine.parses\"",
        "\"name\":\"worker0.phase.eval_ns\"",
        "\"name\":\"worker1.engine.parses\"",
    ] {
        assert!(out.contains(needle), "missing {needle} in:\n{out}");
    }

    // The merged engine counters equal the sum over replicas.
    let stats = pool.stats();
    let summed: u64 = stats.per_worker.iter().map(|w| w.engine.parses).sum();
    assert_eq!(stats.engine.parses, summed);
    pool.shutdown();
}

/// The pool serves the same language the single engine does — a smoke
/// test that the paper's workflow (classes, views, queries) survives
/// replication end to end.
#[test]
fn paper_workflow_through_the_pool() {
    let mut pool = small_pool(2);
    let s = 1;
    pool.run(s, "class Staff = class {} end;").expect("class");
    pool.run(
        s,
        "insert(Staff, IDView([Name = \"Alice\", Sex = \"female\"]))",
    )
    .expect("insert");
    pool.run(s, "insert(Staff, IDView([Name = \"Bob\", Sex = \"male\"]))")
        .expect("insert");
    pool.run(
        s,
        "class Female = class {} include Staff as fn x => [Name = x.Name] \
         where fn x => query(fn p => p.Sex = \"female\", x) end;",
    )
    .expect("view class");
    pool.barrier().expect("barrier");
    let expected = "{\"Alice\"}";
    for w in 0..pool.worker_count() {
        assert_eq!(
            pool.probe_worker(
                w,
                "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Female)"
            )
            .expect("probe"),
            expected
        );
    }
    pool.shutdown();
}

/// The payoff of per-name dependency invalidation, multiplied by
/// replication: an unrelated `val` rebind is replayed on every replica
/// without evicting any replica's statement cache, while rebinding a name
/// the cached query depends on invalidates on every replica.
#[test]
fn unrelated_rebind_keeps_replica_caches_warm() {
    let mut pool = small_pool(3);
    let s = 7;
    pool.run(s, "class Staff = class {} end;").expect("class");
    pool.run(s, "insert(Staff, IDView([Name = \"Alice\"]))")
        .expect("insert");
    pool.barrier().expect("barrier");

    // Warm every replica's statement cache (second probe is the hit).
    for w in 0..pool.worker_count() {
        assert_eq!(
            pool.probe_worker(w, NAMES_QUERY).expect("cold"),
            "{\"Alice\"}"
        );
        pool.probe_worker(w, NAMES_QUERY).expect("warm");
    }

    // An unrelated rebind is sequenced and replayed everywhere…
    pool.run(s, "val unrelated = 1;").expect("rebind");
    pool.barrier().expect("barrier");
    let before = pool.stats();
    for w in 0..pool.worker_count() {
        assert_eq!(
            pool.probe_worker(w, NAMES_QUERY).expect("still warm"),
            "{\"Alice\"}"
        );
    }
    let after = pool.stats();
    // …and every replica still serves the query from its cache.
    for (b, a) in before.per_worker.iter().zip(after.per_worker.iter()) {
        assert_eq!(b.worker, a.worker);
        assert_eq!(
            a.engine.stmt_cache_hits,
            b.engine.stmt_cache_hits + 1,
            "worker {} lost its cached statement to an unrelated rebind",
            a.worker
        );
        assert_eq!(
            a.engine.stmt_cache_dep_invalidations, b.engine.stmt_cache_dep_invalidations,
            "worker {} saw a spurious dep invalidation",
            a.worker
        );
    }

    // Rebinding a name the query depends on invalidates on every replica.
    pool.run(s, "class Staff = class {} end;")
        .expect("rebind dep");
    pool.barrier().expect("barrier");
    let before = pool.stats();
    for w in 0..pool.worker_count() {
        assert_eq!(pool.probe_worker(w, NAMES_QUERY).expect("recompiles"), "{}");
    }
    let after = pool.stats();
    for (b, a) in before.per_worker.iter().zip(after.per_worker.iter()) {
        assert_eq!(
            a.engine.stmt_cache_dep_invalidations,
            b.engine.stmt_cache_dep_invalidations + 1,
            "worker {} must drop the stale compilation",
            a.worker
        );
        assert_eq!(a.engine.stmt_cache_hits, b.engine.stmt_cache_hits);
    }
    pool.shutdown();
}

/// The compile tier composes with replication: statements compiled to
/// offset form stay warm in every replica's cache across unrelated log
/// replay, a respawned worker rebuilds its cache by replaying the same
/// compiled pipeline, and no replica ever falls back to dynamic field
/// lookup on this workload.
#[test]
fn compiled_statements_stay_warm_across_replay_and_respawn() {
    let mut pool = small_pool(2);
    let s = 9;
    pool.run(s, "val alice = IDView([Name = \"Alice\", Age = 40]);")
        .expect("val");
    pool.run(s, "class Staff = class {alice} end;")
        .expect("class");
    pool.run(
        s,
        "fun names c = cquery(fn x => map(fn o => query(fn r => r.Name, o), x), c);",
    )
    .expect("fun");
    pool.barrier().expect("barrier");

    // Warm every replica (the first probe compiles through the tier).
    for w in 0..pool.worker_count() {
        assert_eq!(
            pool.probe_worker(w, "names Staff").expect("cold"),
            "{\"Alice\"}"
        );
    }

    // An unrelated write replays everywhere; the compiled statements
    // survive it — the second probe is a pure cache hit (no re-inference,
    // hence no re-lowering either: hits run the stored offset code).
    pool.run(s, "val tick = 1;").expect("write");
    pool.barrier().expect("barrier");
    let before = pool.stats();
    for w in 0..pool.worker_count() {
        assert_eq!(
            pool.probe_worker(w, "names Staff").expect("warm"),
            "{\"Alice\"}"
        );
    }
    let after = pool.stats();
    for (b, a) in before.per_worker.iter().zip(after.per_worker.iter()) {
        assert_eq!(b.worker, a.worker);
        assert_eq!(
            a.engine.stmt_cache_hits,
            b.engine.stmt_cache_hits + 1,
            "worker {} lost its compiled statement to replay",
            a.worker
        );
        assert_eq!(
            a.engine.inferences, b.engine.inferences,
            "worker {} re-inferred on a warm hit",
            a.worker
        );
    }

    // A respawned worker replays the whole log through the same compile
    // tier, then re-fills its (fresh) statement cache on first probe and
    // hits on the second.
    pool.inject_worker_panic(0);
    pool.barrier().expect("respawn");
    assert_eq!(
        pool.probe_worker(0, "names Staff").expect("recompiles"),
        "{\"Alice\"}"
    );
    let before = pool.stats();
    assert_eq!(
        pool.probe_worker(0, "names Staff").expect("hit"),
        "{\"Alice\"}"
    );
    let after = pool.stats();
    let b0 = before
        .per_worker
        .iter()
        .find(|w| w.worker == 0)
        .expect("w0");
    let a0 = after.per_worker.iter().find(|w| w.worker == 0).expect("w0");
    assert_eq!(a0.engine.stmt_cache_hits, b0.engine.stmt_cache_hits + 1);

    // Every replica — survivor and respawn alike — ran this workload
    // entirely through integer offsets.
    for w in &after.per_worker {
        assert!(
            w.engine.field_offsets_resolved > 0,
            "worker {} never used the offset tier",
            w.worker
        );
        assert_eq!(
            w.engine.dyn_field_fallbacks, 0,
            "worker {} fell back to dynamic lookup",
            w.worker
        );
    }
    pool.shutdown();
}

/// The acceptance drill for bounded recovery: with checkpointing every 4
/// applied writes, a replica that crashes at log offset L respawns from
/// the checkpoint at offset K and replays **exactly L − K** entries —
/// not L — and still answers queries identically to an untouched
/// replica.
#[test]
fn checkpointed_respawn_replays_exactly_the_log_tail() {
    let mut pool = Pool::new(
        PoolConfig::default()
            .workers(2)
            .queue_capacity(8)
            .checkpoint_every(4),
    );
    pool.run(1, "class Staff = class {} end;").expect("class");
    for i in 0..9 {
        pool.run(1, &format!("insert(Staff, IDView([Name = \"N{i}\"]))"))
            .expect("insert");
    }
    let log_len = pool.log_len();
    assert_eq!(log_len, 10, "L = 10 writes sequenced");
    // Every replica has applied all 10 entries, so the checkpoint grid
    // (every 4) has deterministically produced one at offset 8.
    pool.barrier().expect("barrier");

    pool.inject_worker_panic(0);
    pool.barrier().expect("respawn and converge");

    let stats = pool.stats();
    let w0 = stats.per_worker.iter().find(|w| w.worker == 0).expect("w0");
    let w1 = stats.per_worker.iter().find(|w| w.worker == 1).expect("w1");
    assert_eq!(w0.generation, 1, "worker 0 was respawned");
    assert_eq!(
        w0.respawn_replayed,
        log_len - 8,
        "respawn must replay exactly the tail above the checkpoint at 8, \
         not the whole log"
    );
    assert_eq!(
        w1.respawn_replayed, 0,
        "the untouched replica never bootstrapped"
    );
    assert_eq!(w0.env_epoch, w1.env_epoch, "replicas diverged");

    // The respawned replica answers exactly like the untouched one.
    let restored = pool.probe_worker(0, NAMES_QUERY).expect("probe respawn");
    let untouched = pool.probe_worker(1, NAMES_QUERY).expect("probe survivor");
    assert_eq!(restored, untouched);
    assert!(
        restored.contains("N0") && restored.contains("N8"),
        "{restored}"
    );
    pool.shutdown();
}

/// Compaction drops entries below the newest checkpoint once every
/// replica is past them; offsets stay absolute, a read below the cut is
/// a loud [`polyview_pool::TruncatedRead`], and the pool keeps serving —
/// including through a post-compaction respawn, which must bootstrap
/// from the checkpoint rather than ever touching the truncated prefix.
#[test]
fn log_compaction_keeps_offsets_absolute_and_respawn_safe() {
    let mut pool = Pool::new(
        PoolConfig::default()
            .workers(2)
            .queue_capacity(8)
            .checkpoint_every(3),
    );
    pool.run(1, "class Staff = class {} end;").expect("class");
    for i in 0..6 {
        pool.run(1, &format!("insert(Staff, IDView([Name = \"C{i}\"]))"))
            .expect("insert");
    }
    pool.barrier().expect("barrier");
    // 7 writes, checkpoints at 3 and 6, every replica at 7: the explicit
    // compaction pass cuts at min(6, 7) = 6.
    let base = pool.compact_log();
    assert_eq!(base, 6);
    assert_eq!(pool.log_len(), 7, "len counts compacted history");
    assert_eq!(pool.log_base(), 6);

    // Surviving offsets read normally; compacted ones are loud errors,
    // never silent empties.
    assert!(pool.log().get(6).expect("live offset").is_some());
    let err = pool.log().get(2).expect_err("below the cut is loud");
    assert_eq!(err.offset, 2);
    assert_eq!(err.base, 6);

    // The pool keeps serving across the cut, and a respawned replica
    // (which can never read below the base) still converges.
    pool.run(1, "insert(Staff, IDView([Name = \"C6\"]))")
        .expect("write after compaction");
    pool.inject_worker_panic(1);
    pool.barrier().expect("respawn");
    let a = pool.probe_worker(0, NAMES_QUERY).expect("probe");
    let b = pool.probe_worker(1, NAMES_QUERY).expect("probe");
    assert_eq!(a, b);
    assert!(a.contains("C0") && a.contains("C6"), "{a}");
    pool.shutdown();
}

/// A sequenced write that fails during apply fails deterministically on
/// every replica — the pool is serving from state the log can no longer
/// reproduce cleanly. Health must scream, not average it into a rate.
#[test]
fn replay_errors_surface_as_unhealthy() {
    let mut pool = small_pool(2);
    assert!(pool.health().health.is_healthy());
    pool.run(1, "val rec = [Name = \"Joe\"];").expect("val");
    // Classifies as a write (update syntax), fails to type-check on
    // every replica: one replay error each.
    let err = pool
        .run(1, "update(rec, Name, \"P\")")
        .expect_err("immutable field");
    assert!(err.is_type(), "got {err:?}");
    pool.barrier().expect("barrier");

    let report = pool.health();
    match &report.health {
        polyview_pool::Health::Unhealthy { reasons } => {
            assert!(
                reasons.iter().any(|r| r.contains("replay error")),
                "expected a replay-error reason, got {reasons:?}"
            );
        }
        other => panic!("expected Unhealthy, got {other:?}"),
    }
    pool.shutdown();
}

/// Growing the pool bootstraps the new replicas from the newest
/// checkpoint: they replay only the log tail, then answer exactly like
/// the replicas that lived through the whole history.
#[test]
fn add_workers_bootstraps_from_the_checkpoint() {
    let mut pool = Pool::new(
        PoolConfig::default()
            .workers(1)
            .queue_capacity(8)
            .checkpoint_every(2),
    );
    pool.run(1, "class Staff = class {} end;").expect("class");
    for i in 0..4 {
        pool.run(1, &format!("insert(Staff, IDView([Name = \"G{i}\"]))"))
            .expect("insert");
    }
    pool.barrier().expect("barrier");
    // 5 writes, newest checkpoint at offset 4.
    pool.add_workers(2);
    assert_eq!(pool.worker_count(), 3);
    pool.barrier().expect("new replicas converge");

    let stats = pool.stats();
    assert_eq!(stats.workers, 3);
    for w in &stats.per_worker {
        if w.worker == 0 {
            continue;
        }
        assert_eq!(
            w.respawn_replayed, 1,
            "worker {} must replay only the tail above the checkpoint at 4",
            w.worker
        );
    }
    let expected = pool.probe_worker(0, NAMES_QUERY).expect("probe");
    for w in 1..pool.worker_count() {
        assert_eq!(pool.probe_worker(w, NAMES_QUERY).expect("probe"), expected);
    }
    assert!(
        expected.contains("G0") && expected.contains("G3"),
        "{expected}"
    );
    pool.shutdown();
}

/// With a snapshot directory, a restarted process resumes from the
/// persisted checkpoint — data, *and* the effect-name classification
/// state whose defining sources were compacted away with the log prefix.
#[test]
fn snapshot_dir_survives_a_process_restart() {
    let dir =
        std::env::temp_dir().join(format!("polyview-pool-restart-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || {
        PoolConfig::default()
            .workers(2)
            .queue_capacity(8)
            .checkpoint_every(2)
            .snapshot_dir(&dir)
    };

    // First life: build state, declare an effectful function, shut down.
    let mut pool = Pool::new(cfg());
    pool.run(1, "class Staff = class {} end;").expect("class");
    pool.run(1, "insert(Staff, IDView([Name = \"Ada\"]))")
        .expect("insert");
    pool.run(1, "insert(Staff, IDView([Name = \"Bob\"]))")
        .expect("insert");
    pool.run(1, "fun put x = insert(Staff, x);").expect("fun");
    pool.barrier().expect("barrier");
    // 4 writes, checkpoint at 4: everything survives the restart.
    pool.shutdown();

    // Second life: the log starts fully compacted at the checkpoint.
    let mut pool = Pool::new(cfg());
    assert_eq!(pool.log_len(), 4, "offsets stay absolute across restart");
    assert_eq!(pool.log_base(), 4, "the prefix is compacted, not replayed");
    let stats = pool.stats();
    for w in &stats.per_worker {
        assert_eq!(
            w.respawn_replayed, 0,
            "restart bootstraps from the checkpoint with no tail to replay"
        );
    }
    // The restored effect set still classifies `put` as effectful — its
    // defining source is gone with the truncated prefix.
    assert_eq!(
        pool.classify("put(IDView([Name = \"Cy\"]))")
            .expect("classify"),
        StmtClass::Write,
        "restored effect names must keep routing calls through the log"
    );
    pool.run(1, "put(IDView([Name = \"Cy\"]))").expect("put");
    pool.barrier().expect("barrier");
    for w in 0..pool.worker_count() {
        let names = pool.probe_worker(w, NAMES_QUERY).expect("probe");
        assert!(
            names.contains("Ada") && names.contains("Bob") && names.contains("Cy"),
            "worker {w}: {names}"
        );
    }
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end request telemetry through the pool (ISSUE 4): one trace id
//! stitches router and replica views, latency histograms carry exact
//! values under a deterministic clock, the slow log captures outliers,
//! and the disabled path is provably inert.
//!
//! Every test injects a [`SharedManualClock`] with a 1 ns step: each
//! clock read returns the current time and advances it by 1, so every
//! timestamp in a trace is a distinct, fully determined integer — the
//! timeline assertions below are exact, not approximate.

use polyview_pool::{
    CollectingEventSink, EventRecord, Pool, PoolConfig, SharedManualClock, StmtClass,
};
use std::sync::Arc;

/// Events of one trace in timeline order. Arrival order in the sink can
/// race between the router and the worker for a few nanoseconds-apart
/// events, but the shared step clock gives every event a distinct
/// (end, start) key, so sorting by span end reconstructs the unique
/// timeline. Ties (instant events stamped at the same reading) only occur
/// between events emitted by one thread, whose arrival order the stable
/// sort preserves.
fn timeline(sink: &CollectingEventSink, trace_id: u64) -> Vec<EventRecord> {
    let mut evs: Vec<EventRecord> = sink
        .events()
        .into_iter()
        .filter(|e| e.trace_id == trace_id)
        .collect();
    evs.sort_by_key(|e| (e.start_ns + e.dur_ns, e.start_ns));
    evs
}

fn names(evs: &[EventRecord]) -> Vec<&str> {
    evs.iter().map(|e| e.name.as_str()).collect()
}

fn attr(e: &EventRecord, key: &str) -> Option<u64> {
    e.attrs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

fn traced_pool(workers: usize) -> (Pool, Arc<CollectingEventSink>, Arc<SharedManualClock>) {
    let sink = Arc::new(CollectingEventSink::new());
    let clock = Arc::new(SharedManualClock::with_step(1));
    let pool = Pool::new(
        PoolConfig::default()
            .workers(workers)
            .telemetry_clock(clock.clone())
            .event_sink(sink.clone()),
    );
    (pool, sink, clock)
}

#[test]
fn one_trace_id_stitches_a_write_end_to_end() {
    let (mut pool, sink, _clock) = traced_pool(1);
    let session = 7;
    pool.run(session, "val x = 1;").expect("write");

    let evs = timeline(&sink, 1);
    println!("trace 1 timeline:");
    for e in &evs {
        println!(
            "  {} start={} dur={} attrs={:?}",
            e.name, e.start_ns, e.dur_ns, e.attrs
        );
    }

    // The deterministic lifecycle: submit → classify → sequence →
    // enqueue → dequeue → catch-up → engine phases → complete. (A `val`
    // declaration has no translate phase — that span appears on view
    // queries.)
    assert_eq!(
        names(&evs),
        vec![
            "pool.submitted",
            "pool.classified",
            "pool.sequenced",
            "pool.enqueued",
            "pool.dequeued",
            "pool.catchup",
            "engine.parse",
            "engine.infer",
            "engine.lower",
            "engine.eval",
            "pool.completed",
        ]
    );

    // Exact timestamps under the 1 ns step clock.
    let by_name = |n: &str| evs.iter().find(|e| e.name == n).unwrap();
    let submitted = by_name("pool.submitted");
    assert_eq!((submitted.start_ns, submitted.dur_ns), (0, 0));
    assert_eq!(attr(submitted, "session"), Some(session));
    let classified = by_name("pool.classified");
    assert_eq!((classified.start_ns, classified.dur_ns), (0, 0));
    assert_eq!(attr(classified, "class"), Some(1), "1 = write");
    let sequenced = by_name("pool.sequenced");
    assert_eq!((sequenced.start_ns, sequenced.dur_ns), (1, 0));
    assert_eq!(attr(sequenced, "offset"), Some(0));
    let enqueued = by_name("pool.enqueued");
    assert_eq!((enqueued.start_ns, enqueued.dur_ns), (1, 0));
    assert_eq!(attr(enqueued, "worker"), Some(0));
    let dequeued = by_name("pool.dequeued");
    assert_eq!(
        (dequeued.start_ns, dequeued.dur_ns),
        (1, 1),
        "queue wait spans enqueue → dequeue"
    );
    assert_eq!(attr(dequeued, "generation"), Some(0));
    let catchup = by_name("pool.catchup");
    assert_eq!((catchup.start_ns, catchup.dur_ns), (2, 1));
    assert_eq!(attr(catchup, "replayed"), Some(0));
    let completed = by_name("pool.completed");
    // 2 router reads + 2 worker reads before the engine, 4 spans × 2
    // reads inside it, then the completion read itself: e2e is exactly
    // 12 steps.
    assert_eq!((completed.start_ns, completed.dur_ns), (0, 12));
    assert_eq!(attr(completed, "ok"), Some(1));

    // Every engine phase span carries the owning request's trace id as
    // its parent — the cross-thread stitch.
    for phase in [
        "engine.parse",
        "engine.infer",
        "engine.lower",
        "engine.eval",
    ] {
        let e = by_name(phase);
        assert_eq!(e.parent, Some(1), "{phase} must parent to the trace");
        assert_eq!(attr(e, "worker"), Some(0));
    }

    // Exact histogram observations.
    let stats = pool.stats();
    assert_eq!(stats.queue_wait.count, 1);
    assert_eq!((stats.queue_wait.min, stats.queue_wait.max), (1, 1));
    assert_eq!(stats.catchup.count, 1);
    assert_eq!((stats.catchup.min, stats.catchup.max), (1, 1));
    assert_eq!(stats.e2e_write.count, 1);
    assert_eq!(stats.e2e_write.sum, completed.dur_ns);
    assert_eq!(stats.e2e_read.count, 0);
    pool.shutdown();
}

#[test]
fn reads_trace_through_the_statement_cache_path() {
    let (mut pool, sink, _clock) = traced_pool(1);
    pool.run(3, "val n = 20;").expect("write");
    pool.run(3, "n + 1").expect("read");
    pool.run(3, "n + 1").expect("cached read");

    // Trace 2: the first read, compiled fresh.
    let evs = timeline(&sink, 2);
    println!("trace 2 timeline: {:?}", names(&evs));
    assert_eq!(names(&evs)[..2], ["pool.submitted", "pool.classified"]);
    assert_eq!(attr(&evs[1], "class"), Some(0), "0 = read");
    assert!(
        !names(&evs).contains(&"pool.sequenced"),
        "reads are never sequenced"
    );
    assert!(names(&evs).contains(&"engine.eval"));
    assert_eq!(*names(&evs).last().unwrap(), "pool.completed");

    // Trace 3: the identical read hits the statement cache — no parse or
    // inference spans, but the eval span still carries the new trace id.
    let evs = timeline(&sink, 3);
    println!("trace 3 timeline: {:?}", names(&evs));
    assert!(!names(&evs).contains(&"engine.parse"));
    assert!(!names(&evs).contains(&"engine.infer"));
    let eval = evs.iter().find(|e| e.name == "engine.eval").unwrap();
    assert_eq!(eval.parent, Some(3));

    let stats = pool.stats();
    assert_eq!(stats.e2e_read.count, 2);
    assert_eq!(stats.e2e_write.count, 1);
    pool.shutdown();
}

#[test]
fn catchup_time_is_attributed_when_a_replica_replays() {
    // Two workers: a write lands on the session's affinity worker; a read
    // probed at the *other* replica replays the log first, and its trace
    // records how many entries the catch-up applied.
    let (mut pool, sink, _clock) = traced_pool(2);
    let session = 1;
    let writer = pool.worker_for(session);
    let other_session = (0..64)
        .find(|s| pool.worker_for(*s) != writer)
        .expect("some session maps to the other worker");
    pool.run(session, "val a = 1;").expect("write");
    pool.run(other_session, "a + 1")
        .expect("read on the other replica");

    let evs = timeline(&sink, 2);
    let catchup = evs.iter().find(|e| e.name == "pool.catchup").unwrap();
    // The other replica may have applied the entry already via the eager
    // CatchUp nudge (it raced the read) — but read-your-writes held
    // either way, and the catch-up event says which happened.
    let replayed = attr(catchup, "replayed").unwrap();
    assert!(replayed <= 1);
    let stats = pool.stats();
    assert_eq!(stats.catchup.count, 2);
    pool.shutdown();
}

#[test]
fn slow_requests_are_ring_buffered_above_the_threshold() {
    let sink = Arc::new(CollectingEventSink::new());
    let clock = Arc::new(SharedManualClock::with_step(1));
    let mut pool = Pool::new(
        PoolConfig::default()
            .workers(1)
            .telemetry_clock(clock.clone())
            .event_sink(sink.clone())
            .slow_threshold_ns(1)
            .slow_log_capacity(2),
    );
    pool.run(9, "val a = 1;").expect("write");
    pool.run(9, "a + 1").expect("read");
    pool.run(9, "a + 2").expect("read");

    // Threshold 1 ns: every request is "slow"; capacity 2 keeps the last
    // two, oldest evicted.
    let slow = pool.slow_requests();
    assert_eq!(slow.len(), 2);
    assert_eq!(slow[0].id, 2);
    assert_eq!(slow[1].id, 3);
    assert_eq!(slow[1].session, 9);
    assert_eq!(slow[1].worker, 0);
    assert_eq!(slow[1].class, StmtClass::Read);
    assert_eq!(slow[1].src, "a + 2");
    assert!(slow[1].e2e_ns >= 1);
    assert!(slow[1].e2e_ns >= slow[1].queue_wait_ns + slow[1].catchup_ns);

    // The slow log is rendered in the stats Display.
    let stats = pool.stats();
    let shown = stats.to_string();
    assert!(shown.contains("slow       id=2"), "display:\n{shown}");
    assert!(shown.contains("latency    e2e read"), "display:\n{shown}");
    pool.shutdown();
}

#[test]
fn no_slow_requests_below_the_threshold() {
    let clock = Arc::new(SharedManualClock::with_step(1));
    let mut pool = Pool::new(
        PoolConfig::default()
            .workers(1)
            .telemetry_clock(clock.clone())
            .slow_threshold_ns(1_000_000_000),
    );
    pool.run(9, "val a = 1;").expect("write");
    pool.run(9, "a + 1").expect("read");
    assert!(pool.slow_requests().is_empty());
    let stats = pool.stats();
    assert_eq!(stats.e2e_read.count, 1, "histograms still fill");
    pool.shutdown();
}

#[test]
fn worker_lost_requests_still_emit_a_terminal_event() {
    let (mut pool, sink, _clock) = traced_pool(1);
    pool.run(5, "val a = 1;").expect("write");

    // Order deterministically: pause the worker, queue a crash, then
    // queue a traced read *behind* the crash — the worker dies before
    // serving it, so the reply channel drops and the ticket emits the
    // terminal event.
    let gate = pool.pause_worker(0).expect("pause");
    assert!(pool.queue_worker_panic(0));
    let ticket = pool
        .submit_read(5, "a + 1")
        .expect("classify")
        .queued()
        .expect("queued");
    gate.release();
    let err = ticket.wait().expect_err("worker died first");
    assert!(err.is_worker_lost());

    let evs = timeline(&sink, 2);
    println!("lost trace timeline: {:?}", names(&evs));
    assert_eq!(*names(&evs).last().unwrap(), "pool.worker_lost");
    assert!(!names(&evs).contains(&"pool.completed"));
    let lost = evs.last().unwrap();
    assert_eq!(attr(lost, "worker"), Some(0));
    assert!(lost.dur_ns > 0, "spans submit → loss detection");

    // The lost request still counts in the e2e histogram.
    let stats = pool.stats();
    assert_eq!(stats.e2e_read.count, 1);
    pool.shutdown();
}

#[test]
fn e2e_counts_match_submissions_across_a_respawn() {
    let (mut pool, sink, _clock) = traced_pool(1);
    pool.run(2, "val a = 1;").expect("write");
    pool.run(2, "a + 1").expect("read");
    pool.inject_worker_panic(0);
    pool.run(2, "val b = 2;").expect("write after respawn");
    pool.run(2, "a + b").expect("read after respawn");

    let stats = pool.stats();
    assert_eq!(stats.respawns, 1);
    assert_eq!(stats.e2e_write.count, 2);
    assert_eq!(stats.e2e_read.count, 2);
    assert_eq!(
        stats.queue_wait.count, 4,
        "every served request waited once"
    );

    // Requests served by the respawned replica are tagged generation 1.
    let last = timeline(&sink, 4);
    let completed = last.iter().find(|e| e.name == "pool.completed").unwrap();
    assert_eq!(attr(completed, "generation"), Some(1));

    // The respawn's replay runs untraced: its engine spans carry trace
    // id 0 and no parent.
    let replay: Vec<EventRecord> = sink
        .events()
        .into_iter()
        .filter(|e| e.trace_id == 0 && e.name.starts_with("engine."))
        .collect();
    assert!(!replay.is_empty(), "replayed entries emit untraced spans");
    assert!(replay.iter().all(|e| e.parent.is_none()));
    pool.shutdown();
}

#[test]
fn disabled_telemetry_reads_no_clock_and_emits_nothing() {
    let sink = Arc::new(CollectingEventSink::new());
    let clock = Arc::new(SharedManualClock::with_step(1));
    let cfg = PoolConfig::default()
        .workers(1)
        .telemetry_clock(clock.clone())
        .event_sink(sink.clone())
        .telemetry_enabled(false); // explicit off wins over the sink builder
    let mut pool = Pool::new(cfg);
    pool.run(1, "val a = 1;").expect("write");
    pool.run(1, "a + 1").expect("read");

    assert_eq!(clock.reads(), 0, "disabled path must never read the clock");
    assert!(sink.is_empty(), "disabled path must never emit");
    let stats = pool.stats();
    assert_eq!(stats.queue_wait.count, 0);
    assert_eq!(stats.e2e_read.count + stats.e2e_write.count, 0);
    assert!(pool.slow_requests().is_empty());
    pool.shutdown();
}

// ----- sampled continuous profiling (DESIGN.md §14) -----

#[test]
fn sampled_profiles_merge_into_worker_stats_and_slow_log() {
    let clock = Arc::new(SharedManualClock::with_step(1));
    let mut pool = Pool::new(
        PoolConfig::default()
            .workers(1)
            .telemetry_clock(clock.clone())
            .profile_sample_every(1)
            .slow_threshold_ns(1)
            .slow_log_capacity(8),
    );
    // A mutual group with a row-polymorphic field read: every profiled
    // request attributes runtime fallback sites too.
    pool.run(3, "fun step r = r.Steps and same r = step(r);")
        .expect("write");
    pool.run(3, "step([Steps := 4])").expect("read");
    pool.run(3, "step([Steps := 5])").expect("read");

    let stats = pool.stats();
    let w = &stats.per_worker[0];
    assert_eq!(w.profile_samples, 3, "every-1 samples every request");
    let profile = w.profile.as_ref().expect("merged worker profile");
    assert!(profile.total_ns() > 0);
    assert!(
        profile.fallback_sites.iter().any(|s| s.label == "Steps"),
        "fallback attribution crosses the worker boundary: {:?}",
        profile.fallback_sites
    );

    // Slow-log entries carry their own per-request profile.
    let slow = pool.slow_requests();
    assert!(!slow.is_empty());
    for s in &slow {
        let p = s.profile.as_ref().expect("sampled slow request profile");
        assert!(p.total_ns() > 0);
    }

    // The fleet snapshot surfaces the sample count in both renderings.
    let shown = stats.to_string();
    assert!(shown.contains("samples=3"), "display:\n{shown}");
    assert!(pool
        .metrics_json()
        .contains("\"name\":\"pool.worker0.profile_samples\",\"value\":3"));
    pool.shutdown();
}

#[test]
fn sampling_every_n_profiles_the_first_and_every_nth_request() {
    let mut pool = Pool::new(PoolConfig::default().workers(1).profile_sample_every(2));
    pool.run(3, "val a = 1;").expect("write"); // request 0: sampled
    pool.run(3, "a + 1").expect("read"); // 1: skipped
    pool.run(3, "a + 2").expect("read"); // 2: sampled
    pool.run(3, "a + 3").expect("read"); // 3: skipped
    let stats = pool.stats();
    assert_eq!(stats.per_worker[0].profile_samples, 2);
    assert!(stats.per_worker[0].profile.is_some());
    pool.shutdown();
}

#[test]
fn profiling_is_off_by_default_in_the_pool() {
    let clock = Arc::new(SharedManualClock::with_step(1));
    let mut pool = Pool::new(
        PoolConfig::default()
            .workers(1)
            .telemetry_clock(clock.clone())
            .slow_threshold_ns(1),
    );
    pool.run(3, "val a = 1;").expect("write");
    pool.run(3, "a + 1").expect("read");
    let stats = pool.stats();
    assert_eq!(stats.per_worker[0].profile_samples, 0);
    assert!(stats.per_worker[0].profile.is_none());
    assert!(pool.slow_requests().iter().all(|s| s.profile.is_none()));
    assert!(!stats.to_string().contains("profile "), "no profile row");
    pool.shutdown();
}

//! Wire-level tests for the TCP front door (`crates/net`, DESIGN.md
//! §15): pipelined batches round-trip, session ids give read-your-writes
//! across connections, admission control surfaces as structured `busy`
//! responses, malformed input never kills a connection, graceful drain
//! completes in-flight writes, and one trace id spans socket → engine.
//!
//! Every test binds an ephemeral loopback port. None of them sleep to
//! synchronize: backpressure tests park the worker inside
//! [`polyview_pool::Pool::pause_worker`]'s gate, and the drain test
//! spins on the server's `net.frames_decoded` counter — a condition
//! that, once true, cannot go false — before draining.

use polyview::obs::jsonl::JsonValue;
use polyview_net::{ClientError, NetClient, NetConfig, NetServer, Reply};
use polyview_pool::{
    CollectingEventSink, EventRecord, PoolConfig, SharedManualClock, WindowConfig,
};
use std::sync::Arc;

fn serve(cfg: NetConfig) -> NetServer {
    NetServer::bind("127.0.0.1:0", cfg).expect("bind ephemeral loopback port")
}

fn connect(server: &NetServer) -> NetClient {
    NetClient::connect(server.local_addr()).expect("connect")
}

/// A pipelined batch is one frame, one ticket, one response: writes and
/// the reads that depend on them land in a single round trip, and reads
/// inside the batch observe the batch's own earlier writes.
#[test]
fn pipelined_batch_round_trips_and_reads_see_batch_writes() {
    let server = serve(NetConfig::default().pool(PoolConfig::default().workers(2)));
    let mut client = connect(&server);
    client.hello(9).expect("hello");

    let results = client
        .call_batch(&[
            "class Staff = class {} end;",
            "insert(Staff, IDView([Name = \"wire\"]))",
            "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)",
        ])
        .expect("batch");
    assert_eq!(results.len(), 3);
    for r in &results {
        assert!(r.is_ok(), "batch entry failed: {r:?}");
    }
    assert!(
        results[2].as_ref().unwrap().contains("wire"),
        "read inside the batch must see the batch's write: {:?}",
        results[2]
    );

    // A failing statement gets a structured per-entry error while its
    // batch-mates still answer.
    let mixed = client
        .call_batch(&["1 + 1", "does_not_exist", "2 + 2"])
        .expect("mixed batch");
    assert!(mixed[0].is_ok());
    assert_eq!(mixed[1].as_ref().unwrap_err().1, "type");
    assert!(mixed[2].is_ok());

    // Pipelining proper: three statements on the wire before any
    // response is read; pool-accepted responses come back in request
    // order (a ping's immediate response may overtake them).
    let a = client.send_stmt("1 + 1").expect("send");
    let b = client.send_stmt("2 + 2").expect("send");
    let c = client.send_stmt("3 + 3").expect("send");
    let p = client.send_ping().expect("ping");
    let mut stmt_order = Vec::new();
    let mut saw_pong = false;
    for _ in 0..4 {
        let resp = client.recv().expect("response");
        match resp.reply {
            Reply::Ok(ref v) if v == "pong" => {
                assert_eq!(resp.id, Some(p));
                saw_pong = true;
            }
            Reply::Ok(_) => stmt_order.push(resp.id.expect("stmt responses carry ids")),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(saw_pong);
    assert_eq!(
        stmt_order,
        vec![a, b, c],
        "pipelined responses arrive in request order"
    );

    let stats = server.stats();
    assert_eq!(stats.frames_invalid, 0);
    assert_eq!(stats.rejected_busy, 0);
    server.shutdown();
}

/// Two connections that `hello` the same session id share affinity and
/// ordering: a read submitted after a write's response observes it.
#[test]
fn read_your_writes_across_connections_sharing_a_session() {
    let server = serve(NetConfig::default().pool(PoolConfig::default().workers(4)));
    let mut writer = connect(&server);
    let mut reader = connect(&server);
    writer.hello(42).expect("hello");
    reader.hello(42).expect("hello");

    writer.call("val shared = 7;").expect("write");
    let got = reader.call("shared + 1").expect("read after write");
    assert!(got.contains('8'), "read must observe the write: {got}");
    server.shutdown();
}

/// With the single worker parked inside the pause gate, the pool's
/// bounded queue fills deterministically; the overflowing request gets
/// `{"id":N,"busy":true}` immediately — overtaking the still-queued
/// responses — and the connection keeps working after release.
#[test]
fn busy_rejection_under_a_paused_worker() {
    let server = serve(
        NetConfig::default()
            .pool(PoolConfig::default().workers(1).queue_capacity(2))
            .max_in_flight(16),
    );
    let mut client = connect(&server);
    client.hello(1).expect("hello");
    client.call("val y = 10;").expect("warm the replica");

    let gate = server.with_pool(|p| p.pause_worker(0)).expect("pause");
    let q1 = client.send_stmt("y + 1").expect("send");
    let q2 = client.send_stmt("y + 2").expect("send");
    let q3 = client.send_stmt("y + 3").expect("send");

    // The worker is parked, so the only response that can arrive is the
    // rejection of the request that overflowed the queue.
    let resp = client.recv().expect("busy response");
    assert_eq!(resp.id, Some(q3));
    assert_eq!(resp.reply, Reply::Busy);
    assert_eq!(server.stats().rejected_busy, 1);

    gate.release();
    let r1 = client.recv().expect("first queued");
    let r2 = client.recv().expect("second queued");
    assert_eq!(r1.id, Some(q1));
    assert_eq!(r2.id, Some(q2));
    assert!(matches!(r1.reply, Reply::Ok(ref v) if v.contains("11")));
    assert!(matches!(r2.reply, Reply::Ok(ref v) if v.contains("12")));

    // Rejection is not an error state: the connection serves on.
    assert!(client
        .call("y + 3")
        .expect("post-busy statement")
        .contains("13"));
    server.shutdown();
}

/// The per-connection in-flight cap rejects before the pool is even
/// consulted: with a cap of 1 and the worker parked, the second
/// pipelined request bounces even though the queue has room.
#[test]
fn in_flight_cap_rejects_before_the_pool() {
    let server = serve(
        NetConfig::default()
            .pool(PoolConfig::default().workers(1).queue_capacity(8))
            .max_in_flight(1),
    );
    let mut client = connect(&server);
    client.hello(1).expect("hello");
    client.call("val z = 1;").expect("warm the replica");

    let gate = server.with_pool(|p| p.pause_worker(0)).expect("pause");
    let first = client.send_stmt("z + 1").expect("send");
    let second = client.send_stmt("z + 2").expect("send");

    let resp = client.recv().expect("busy response");
    assert_eq!(resp.id, Some(second));
    assert_eq!(resp.reply, Reply::Busy);

    gate.release();
    let resp = client.recv().expect("queued response");
    assert_eq!(resp.id, Some(first));
    assert!(matches!(resp.reply, Reply::Ok(ref v) if v.contains('2')));
    server.shutdown();
}

/// Malformed and oversized frames are values, not disconnects: each
/// gets a structured `proto` error on its own line and the connection
/// keeps serving.
#[test]
fn malformed_and_oversized_frames_keep_the_connection_alive() {
    let server = serve(
        NetConfig::default()
            .pool(PoolConfig::default().workers(1))
            .max_frame_bytes(128),
    );
    let mut client = connect(&server);

    // Not JSON at all.
    client.send_line("this is not a frame").expect("send");
    let resp = client.recv().expect("proto error");
    assert_eq!(resp.id, None);
    assert!(matches!(resp.reply, Reply::Err { ref kind, .. } if kind == "proto"));

    // Well-formed JSON, ill-formed frame — the id still comes back.
    client.send_line(r#"{"op":"stmt","id":9}"#).expect("send");
    let resp = client.recv().expect("proto error");
    assert_eq!(resp.id, Some(9));
    assert!(matches!(resp.reply, Reply::Err { ref kind, .. } if kind == "proto"));

    // Unknown op.
    client.send_line(r#"{"op":"warp","id":10}"#).expect("send");
    let resp = client.recv().expect("proto error");
    assert_eq!(resp.id, Some(10));
    assert!(matches!(resp.reply, Reply::Err { ref kind, .. } if kind == "proto"));

    // An oversized line is consumed in discard mode — bounded memory,
    // one error, no panic, no silent drop.
    let huge = "x".repeat(4096);
    client.send_line(&huge).expect("send");
    let resp = client.recv().expect("proto error");
    assert_eq!(resp.id, None);
    assert!(
        matches!(resp.reply, Reply::Err { ref kind, ref message } if kind == "proto" && message.contains("128")),
        "oversized frames name the bound: {resp:?}"
    );

    // The connection is still alive and well.
    let id = client.send_ping().expect("ping");
    let resp = client.recv().expect("pong");
    assert_eq!(resp.id, Some(id));
    assert!(matches!(resp.reply, Reply::Ok(ref v) if v == "pong"));
    assert!(client
        .call("1 + 1")
        .expect("statement after garbage")
        .contains('2'));

    let stats = server.stats();
    assert_eq!(stats.frames_invalid, 4);
    assert_eq!(stats.conns_open, 1, "the connection never dropped");
    server.shutdown();
}

/// Graceful drain: a write already accepted when the drain begins still
/// completes, its response is flushed before the socket closes, and the
/// returned pool has the write applied.
#[test]
fn graceful_drain_completes_in_flight_writes() {
    let server = serve(NetConfig::default().pool(PoolConfig::default().workers(1)));
    let mut client = connect(&server);
    client.hello(3).expect("hello");

    // Park the worker so the write is provably still in flight, then
    // put it on the wire and wait for the server to have accepted it:
    // `frames_decoded` ticks at decode time, and the reader submits
    // synchronously right after, so once the counter reads 2 (hello +
    // stmt) the request is either queued or about to be — both on the
    // drain's guaranteed-completion side.
    let gate = server.with_pool(|p| p.pause_worker(0)).expect("pause");
    let id = client.send_stmt("val net_drain = 41;").expect("send write");
    while server.stats().frames_decoded < 2 {
        std::thread::yield_now();
    }

    let drainer = std::thread::spawn(move || server.drain());
    gate.release();
    let mut pool = drainer.join().expect("drain");

    // The response was flushed before the connection closed…
    let resp = client.recv().expect("drained write still answered");
    assert_eq!(resp.id, Some(id));
    assert!(
        matches!(resp.reply, Reply::Ok(_)),
        "write completed: {resp:?}"
    );
    // …and the close is a clean EOF, not an error.
    assert!(matches!(client.recv(), Err(ClientError::Closed)));

    // The returned pool kept the sequenced write.
    assert_eq!(pool.log_len(), 1);
    let got = pool
        .run(3, "net_drain + 1")
        .expect("read from drained pool");
    assert!(got.contains("42"), "write visible after drain: {got}");
    pool.shutdown();
}

/// One trace id spans the whole path: `net.read` / `net.decoded` on the
/// socket side share the id the pool mints at submit, through
/// `pool.*` sequencing to the `engine.*` phase spans.
#[test]
fn one_trace_id_spans_socket_to_engine() {
    let sink = Arc::new(CollectingEventSink::new());
    let clock = Arc::new(SharedManualClock::with_step(1));
    let server = serve(
        NetConfig::default().pool(
            PoolConfig::default()
                .workers(1)
                .telemetry_clock(clock.clone())
                .event_sink(sink.clone()),
        ),
    );
    let mut client = connect(&server);
    client.call("val x = 1;").expect("traced write");
    server.shutdown();

    let events = sink.events();
    let accepted: Vec<&EventRecord> = events.iter().filter(|e| e.name == "net.accepted").collect();
    assert_eq!(accepted.len(), 1, "one connection, one accept event");
    assert_eq!(
        accepted[0].trace_id, 0,
        "no request exists yet at accept time"
    );
    let conn = attr(accepted[0], "conn").expect("accept carries the connection id");

    let net_read = events
        .iter()
        .find(|e| e.name == "net.read")
        .expect("net.read emitted");
    let trace = net_read.trace_id;
    assert_ne!(trace, 0, "net.read carries the pool-minted trace id");
    assert_eq!(attr(net_read, "conn"), Some(conn));

    // The full timeline under that one id, socket to engine. The shared
    // step clock gives every span a distinct (end, start) key, so the
    // sort reconstructs the unique timeline.
    let mut evs: Vec<&EventRecord> = events.iter().filter(|e| e.trace_id == trace).collect();
    evs.sort_by_key(|e| (e.start_ns + e.dur_ns, e.start_ns));
    let names: Vec<&str> = evs.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "net.read",
            "net.decoded",
            "pool.submitted",
            "pool.classified",
            "pool.sequenced",
            "pool.enqueued",
            "pool.dequeued",
            "pool.catchup",
            "engine.parse",
            "engine.infer",
            "engine.lower",
            "engine.eval",
            "pool.completed",
        ],
        "one id stitches socket, router, worker, and engine"
    );
}

fn attr(e: &EventRecord, key: &str) -> Option<u64> {
    e.attrs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

/// Walk a path of nested object members inside a decoded `stats` reply.
fn member<'v>(members: &'v [(String, JsonValue)], path: &[&str]) -> Option<&'v JsonValue> {
    let (first, rest) = path.split_first()?;
    let v = JsonValue::get(members, first)?;
    rest.iter().try_fold(v, |v, key| {
        v.as_object().and_then(|m| JsonValue::get(m, key))
    })
}

/// The `stats` op round-trips with deterministic windowed values: under
/// a manual clock the window spans exactly the nanoseconds we advanced
/// and the counter deltas are exactly the statements we submitted, so
/// the computed rate is exact.
#[test]
fn stats_round_trips_with_deterministic_windows() {
    let clock = Arc::new(SharedManualClock::new());
    let server = serve(
        NetConfig::default().pool(
            PoolConfig::default()
                .workers(2)
                .telemetry_clock(clock.clone())
                .stats_window(WindowConfig {
                    capacity: 8,
                    interval_ns: 1_000,
                }),
        ),
    );
    let mut client = connect(&server);
    client.hello(1).expect("hello");
    client.call("val windowed = 1;").expect("write");

    // First stats call takes the window's first snapshot: no window yet.
    let stats = client.stats().expect("stats");
    assert_eq!(
        member(&stats, &["health"]).and_then(JsonValue::as_str),
        Some("healthy")
    );
    assert_eq!(
        member(&stats, &["workers"]).and_then(JsonValue::as_u64),
        Some(2)
    );
    assert_eq!(
        member(&stats, &["window"]),
        Some(&JsonValue::Null),
        "one snapshot is not a window"
    );
    assert_eq!(
        member(&stats, &["cumulative", "counters", "pool.submitted_writes"])
            .and_then(JsonValue::as_u64),
        Some(1)
    );
    let workers = member(&stats, &["per_worker"])
        .and_then(JsonValue::as_array)
        .expect("per-worker rows");
    assert_eq!(workers.len(), 2);
    for row in workers {
        let row = row.as_object().expect("row object");
        assert_eq!(
            JsonValue::get(row, "live").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(
            JsonValue::get(row, "replay_lag").and_then(JsonValue::as_u64),
            Some(0)
        );
    }

    // Advance exactly 2µs, submit exactly 4 reads, snapshot again: the
    // window must report delta 4 over span 2000ns — a rate of 2e6/s.
    clock.advance(2_000);
    for _ in 0..4 {
        client.call("windowed + 1").expect("read");
    }
    let stats = client.stats().expect("stats with a window");
    assert_eq!(
        member(&stats, &["window", "span_ns"]).and_then(JsonValue::as_u64),
        Some(2_000)
    );
    assert_eq!(
        member(&stats, &["window", "counters", "pool.submitted_reads"]).and_then(JsonValue::as_u64),
        Some(4)
    );
    assert_eq!(
        member(&stats, &["window", "rates", "pool.submitted_reads"]).and_then(JsonValue::as_u64),
        Some(2_000_000),
        "4 reads over 2000ns is exactly 2e6/s"
    );
    // Cumulative counters are untouched by windowing.
    assert_eq!(
        member(&stats, &["cumulative", "counters", "pool.submitted_reads"])
            .and_then(JsonValue::as_u64),
        Some(4)
    );
    server.shutdown();
}

/// `health` answers as an immediate while every pool queue is full —
/// the whole point of not routing it through the worker queues. The
/// probe goes down the same connection whose responses are wedged
/// behind the paused worker, so the answer provably overtakes them.
#[test]
fn health_answers_while_every_queue_is_full() {
    let server = serve(
        NetConfig::default()
            .pool(PoolConfig::default().workers(1).queue_capacity(2))
            .max_in_flight(16),
    );
    let mut client = connect(&server);
    client.hello(1).expect("hello");
    client.call("val hp = 1;").expect("warm the replica");

    let (verdict, reasons) = client.health().expect("health on an idle server");
    assert_eq!(verdict, "healthy", "{reasons:?}");

    let gate = server.with_pool(|p| p.pause_worker(0)).expect("pause");
    let q1 = client.send_stmt("hp + 1").expect("send");
    let q2 = client.send_stmt("hp + 2").expect("send");

    // Both queue slots are taken and the worker is parked: nothing can
    // answer except an immediate.
    let (verdict, reasons) = client.health().expect("health while saturated");
    assert_eq!(verdict, "unhealthy", "{reasons:?}");
    assert!(
        reasons.iter().any(|r| r.contains("at capacity")),
        "expected a queue-capacity reason, got {reasons:?}"
    );
    // `stats` is served by the reader too, without touching the queues.
    let stats = client.stats().expect("stats while saturated");
    assert_eq!(
        member(&stats, &["max_queue_depth"]).and_then(JsonValue::as_u64),
        Some(2)
    );

    gate.release();
    let r1 = client.recv().expect("first queued");
    let r2 = client.recv().expect("second queued");
    assert_eq!(r1.id, Some(q1));
    assert_eq!(r2.id, Some(q2));
    let (verdict, reasons) = client.health().expect("health after release");
    assert_eq!(verdict, "healthy", "{reasons:?}");
    server.shutdown();
}

/// `watch` turns the connection push-capable: the server emits
/// `{"push":seq,"stats":{...}}` frames on its own initiative until
/// `unwatch`, whose ack arrives in order even with pushes in flight.
#[test]
fn watch_pushes_stats_until_unwatch() {
    let server = serve(NetConfig::default().pool(PoolConfig::default().workers(1)));
    let mut client = connect(&server);
    client.hello(1).expect("hello");
    client.call("val watched = 1;").expect("write");

    client.watch(5).expect("watch ack");
    let mut seqs = Vec::new();
    while seqs.len() < 2 {
        let resp = client.recv().expect("pushed frame");
        match resp.reply {
            Reply::Push { seq, stats } => {
                assert_eq!(resp.id, None, "pushes answer no request");
                assert_eq!(
                    member(&stats, &["health"]).and_then(JsonValue::as_str),
                    Some("healthy")
                );
                seqs.push(seq);
            }
            other => panic!("expected a push, got {other:?}"),
        }
    }
    assert_eq!(seqs, vec![1, 2], "push sequence numbers are contiguous");

    // `unwatch` acks (skipping any pushes already in flight) and the
    // connection still serves requests afterwards.
    client.unwatch().expect("unwatch ack");
    assert!(client.call("watched + 1").expect("statement").contains('2'));
    assert!(server.stats().watch_pushes >= 2);
    server.shutdown();
}

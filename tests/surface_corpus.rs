//! A regression corpus: small surface-language programs with pinned
//! results, one engine per case. Broad, shallow coverage that catches
//! regressions anywhere in the parse → infer → evaluate pipeline.

use polyview::Engine;

fn run(src: &str) -> String {
    let mut e = Engine::new();
    e.load_prelude().expect("prelude");
    e.eval_to_string(src)
        .unwrap_or_else(|err| panic!("corpus program failed ({err}): {src}"))
}

#[track_caller]
fn check(src: &str, expected: &str) {
    assert_eq!(run(src), expected, "program: {src}");
}

#[test]
fn arithmetic_and_strings() {
    check("1 + 2 * 3", "7");
    check("(1 + 2) * 3", "9");
    check("10 - 3 - 4", "3");
    check("7 / 2", "3");
    check("7 % 2", "1");
    check("-5 + 2", "-3");
    check("abs (-5)", "5");
    check("min 3 9", "3");
    check("max 3 9", "9");
    check("\"foo\" ^ \"bar\"", "\"foobar\"");
    check("strlen \"hello\"", "5");
    check("int_to_string 42", "\"42\"");
    check("neg 7", "-7");
}

#[test]
fn booleans_and_comparison() {
    check("1 < 2", "true");
    check("2 <= 2", "true");
    check("3 > 4", "false");
    check("3 >= 4", "false");
    check("1 = 1", "true");
    check("1 <> 1", "false");
    check("true andalso false", "false");
    check("false orelse true", "true");
    check("not true", "false");
    check("if 1 < 2 then \"y\" else \"n\"", "\"y\"");
}

#[test]
fn let_functions_recursion() {
    check("let x = 21 in x + x end", "42");
    check("let f = fn x => x * x in f 7 end", "49");
    check(
        "let fun fact n = if n = 0 then 1 else n * fact (n - 1) in fact 5 end",
        "120",
    );
    check(
        "let fun even n = if n = 0 then true else odd (n - 1) \
         and odd n = if n = 0 then false else even (n - 1) in even 9 end",
        "false",
    );
    check(
        "(fix f => fn n => if n > 100 then n else f (n * 2)) 3",
        "192",
    );
    check("(fn x y z => x + y + z) 1 2 3", "6");
}

#[test]
fn records_and_tuples() {
    check("[a = 1, b = \"x\"].a", "1");
    check("[a = 1, b = \"x\"].b", "\"x\"");
    check("(1, 2, 3).2", "2");
    check(
        "let r = [m := 5] in let u = update(r, m, 6) in r.m end end",
        "6",
    );
    check(
        "let r = [m := 1] in \
         let s = [alias := extract(r, m)] in \
         let u = update(s, alias, 9) in r.m end end end",
        "9",
    );
    check("let r = [a = 1] in r = r end", "true");
    check("[a = 1] = [a = 1]", "false");
}

#[test]
fn sets_and_prelude() {
    check("{3, 1, 2}", "{1, 2, 3}");
    check("{1, 1, 1}", "{1}");
    check("union({1}, {2})", "{1, 2}");
    check("count {10, 20}", "2");
    check("sum {1, 2, 3, 4}", "10");
    check("maximum {4, 9, 2}", "9");
    check("member(2, {1, 2, 3})", "true");
    check("member(9, {1, 2, 3})", "false");
    check("map(fn x => x + 1, {1, 2})", "{2, 3}");
    check("filter(fn x => x % 2 = 0, {1, 2, 3, 4})", "{2, 4}");
    check("exists (fn x => x > 2) {1, 3}", "true");
    check("forall (fn x => x > 0) {1, 3}", "true");
    check("diff {1, 2, 3} {2}", "{1, 3}");
    check("subset {1} {1, 2}", "true");
    check("flatten {{1}, {2, 3}}", "{1, 2, 3}");
    check("count (prod({1, 2}, {1, 2, 3}))", "6");
    check(
        "hom({1, 2, 3}, fn x => x * x, fn a => fn b => a + b, 0)",
        "14",
    );
}

#[test]
fn objects_and_views() {
    check("query(fn x => x.a, IDView([a = 7]))", "7");
    check(
        "query(fn x => x.b, IDView([a = 7, c = 1]) as fn y => [b = y.a * 2])",
        "14",
    );
    check(
        "let o = IDView([a = 1]) in objeq(o, o as fn x => [z = 9]) end",
        "true",
    );
    check("objeq(IDView([a = 1]), IDView([a = 1]))", "false");
    check("count {IDView([a = 1]), IDView([a = 1])}", "2");
    // Sets are homogeneous, so the second view must present the same type;
    // the two elements still collapse to one object (objeq).
    check(
        "let o = IDView([a = 1]) in count {o, o as fn x => [a = x.a * 2]} end",
        "1",
    );
    check("fuse(IDView([a = 1]), IDView([a = 1])) = {}", "true");
    check(
        "let o = IDView([a = 3]) in \
         count (fuse(o, o as fn x => [b = x.a])) end",
        "1",
    );
    check(
        "let o = IDView([m := 5]) in \
         let u = query(fn x => update(x, m, 6), o) in \
         query(fn x => x.m, o) end end",
        "6",
    );
    check(
        "query(fn p => p.l.a + p.r.b, \
         relobj(l = IDView([a = 1]), r = IDView([b = 2])))",
        "3",
    );
    check(
        "count (select as fn x => [n = x.a] from \
         {IDView([a = 1]), IDView([a = 2])} \
         where fn o => query(fn x => x.a > 1, o))",
        "1",
    );
    check(
        "materialize {IDView([a = 5]) as fn x => [b = x.a]}",
        "{[b = 5]}",
    );
}

#[test]
fn classes_end_to_end() {
    check("csize (class {IDView([a = 1]), IDView([a = 2])} end)", "2");
    check(
        "let c = class {} end in \
         let u = insert(c, IDView([a = 1])) in csize c end end",
        "1",
    );
    check(
        "let o = IDView([a = 1]) in \
         let c = class {o} end in \
         let u = delete(c, o) in csize c end end end",
        "0",
    );
    check(
        "let src = class {IDView([a = 1]), IDView([a = 10])} end in \
         csize (class {} include src as fn x => x \
                where fn o => query(fn x => x.a > 5, o) end) end",
        "1",
    );
    check(
        "let class A = class {IDView([a = 1])} \
             include B as fn x => x where fn x => true end \
         and B = class {IDView([a = 2])} \
             include A as fn x => x where fn x => true end \
         in csize A end",
        "2",
    );
    check(
        "let mk = fn s => class s end in \
         csize (mk {IDView([a = 1])}) end",
        "1",
    );
    check(
        "cquery(fn s => sum (map(fn o => query(fn x => x.a, o), s)), \
                class {IDView([a = 10]), IDView([a = 32])} end)",
        "42",
    );
}

#[test]
fn comments_and_whitespace_robustness() {
    check("1 + (* inline (* nested *) comment *) 2", "3");
    check("-- leading comment\n1 + 2", "3");
    check("  \n\t 42 \n ", "42");
}

#[test]
fn paper_headline_numbers() {
    // The §3.3 pipeline distilled to one expression.
    check(
        "let joe = IDView([Name = \"Joe\", BirthYear = 1955, \
                           Salary := 2000, Bonus := 5000]) in \
         let jv = joe as fn x => [Name = x.Name, \
                                  Age = this_year() - x.BirthYear, \
                                  Income = x.Salary, \
                                  Bonus := extract(x, Bonus)] in \
         query(fn p => p.Income * 12 + p.Bonus, jv) end end",
        "29000",
    );
    check("this_year()", "1994");
}

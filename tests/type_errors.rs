//! Systematic rejection of ill-typed programs: every static guarantee the
//! paper's type system provides, exercised through the surface language.

use polyview::{Engine, Error};
use polyview_types::TypeError;

fn reject(src: &str) -> Error {
    let mut e = Engine::new();
    e.exec(
        r#"
        val joe = IDView([Name = "Joe", BirthYear = 1955,
                          Salary := 2000, Bonus := 5000]);
        val raw = [Name = "Doe", Salary := 3000];
        class Staff = class {IDView([Name = "A", Sex = "female"])} end;
        "#,
    )
    .expect("setup");
    e.infer_expr(src).expect_err("program should be rejected")
}

fn assert_type_error(src: &str) {
    let err = reject(src);
    assert!(err.is_type_error(), "{src} gave {err:?}");
}

#[test]
fn field_access_on_non_record() {
    assert_type_error("1.Name");
    assert_type_error("\"x\".Name");
    assert_type_error("{1}.Name");
}

#[test]
fn missing_fields() {
    assert_type_error("raw.Age");
    assert!(matches!(
        reject("raw.Age"),
        Error::Type(TypeError::MissingField { .. })
    ));
}

#[test]
fn update_violations() {
    assert!(matches!(
        reject("update(raw, Name, \"P\")"),
        Error::Type(TypeError::MutabilityViolation { .. })
    ));
    assert_type_error("update(raw, Salary, \"not an int\")");
    assert_type_error("update(raw, Missing, 1)");
    assert_type_error("update(1, x, 2)");
}

#[test]
fn extract_violations() {
    assert!(matches!(
        reject("extract(raw, Name)"),
        Error::Type(TypeError::MutabilityViolation { .. })
    ));
    // L-values are not first-class ints.
    assert_type_error("extract(raw, Salary) * 2");
    // …nor comparable to ints.
    assert_type_error("extract(raw, Salary) = 2");
}

#[test]
fn application_arity_and_domain() {
    assert_type_error("1 2");
    assert_type_error("(fn x => x + 1) \"str\"");
    assert_type_error("add 1 true");
}

#[test]
fn condition_must_be_bool() {
    assert_type_error("if 1 then 2 else 3");
    assert_type_error("if true then 1 else \"x\"");
}

#[test]
fn heterogeneous_sets() {
    assert_type_error("{1, \"x\"}");
    assert_type_error("union({1}, {\"x\"})");
}

#[test]
fn eq_requires_equal_types() {
    assert_type_error("1 = \"x\"");
    assert_type_error("eq({1}, 1)");
}

#[test]
fn view_layer_violations() {
    // IDView needs a record.
    assert_type_error("IDView(1)");
    assert_type_error("IDView({1})");
    // query needs a function and an object.
    assert_type_error("query(fn x => x, 1)");
    assert_type_error("query(1, joe)");
    // Querying a hidden field through a view.
    assert_type_error("query(fn x => x.BirthYear, joe as fn y => [Name = y.Name])");
    // as needs an object on the left.
    assert_type_error("1 as fn x => x");
    // fuse needs objects.
    assert_type_error("fuse(1, joe)");
    // The view function's domain must match the view type.
    assert_type_error("joe as fn x => [N = x.NoSuchField]");
}

#[test]
fn view_update_restrictions_propagate() {
    // A view exposing Income immutably forbids updates through it, even
    // though the underlying Salary is mutable (the paper's access
    // restriction example).
    assert_type_error("query(fn x => update(x, Income, 1), joe as fn y => [Income = y.Salary])");
}

#[test]
fn class_layer_violations() {
    // cquery needs a set-level function.
    assert_type_error("cquery(fn o => query(fn x => x.Name, o), Staff)");
    // insert of a non-object.
    assert_type_error("insert(Staff, 1)");
    // insert of an object of the wrong view type.
    assert_type_error("insert(Staff, IDView([Other = 1]))");
    // include source must be a class.
    assert_type_error(
        "class {} include {IDView([Name = \"x\", Sex = \"f\"])} as fn s => s \
         where fn s => true end",
    );
    // predicate must return bool.
    assert_type_error("class {} include Staff as fn s => s where fn s => 1 end");
    // view must produce the class's object type consistently across
    // clauses.
    assert_type_error(
        "class {IDView([a = 1])} include Staff as fn s => [b = 2] \
         where fn s => true end",
    );
}

#[test]
fn polymorphism_is_not_unsound_subtyping() {
    // A function requiring Income cannot be applied to a record without
    // it, even through an object.
    let mut e = Engine::new();
    e.exec("fun annual p = p.Income * 12 + p.Bonus;")
        .expect("defines");
    let err = e
        .infer_expr("annual [Income = 3]")
        .expect_err("missing Bonus");
    assert!(err.is_type_error());
}

#[test]
fn occurs_check_rejected() {
    assert_type_error("fn x => x x");
    assert!(matches!(
        reject("fn x => x x"),
        Error::Type(TypeError::Occurs(..))
    ));
}

#[test]
fn unbound_names_rejected_statically() {
    assert!(matches!(
        reject("nope + 1"),
        Error::Type(TypeError::Unbound(_))
    ));
}

#[test]
fn errors_display_readably() {
    let shown = reject("update(raw, Name, \"P\")").to_string();
    assert!(shown.contains("Name"), "got: {shown}");
    assert!(shown.contains("immutable"), "got: {shown}");
    let shown = reject("raw.Age").to_string();
    assert!(shown.contains("no field"), "got: {shown}");
}

//! Session-level engine behaviour: multi-statement programs, persistence,
//! interleaving of definitions and effects, error recovery, and the
//! surface-language forms working together end to end.

use polyview::{Engine, Error, Outcome};

#[test]
fn long_session_state_accumulates() {
    let mut e = Engine::new();
    e.load_prelude().expect("prelude");
    e.exec(
        r#"
        val db_epoch = [n := 0];
        fun tick u = update(db_epoch, n, db_epoch.n + 1);
        class Log = class {} end;
        "#,
    )
    .expect("setup");
    for i in 0..10 {
        e.exec(&format!("tick (); insert(Log, IDView([entry = {i}]));"))
            .expect("step");
    }
    assert_eq!(e.eval_to_string("db_epoch.n").expect("runs"), "10");
    assert_eq!(e.eval_to_string("csize Log").expect("runs"), "10");
}

#[test]
fn rebinding_shadows_cleanly() {
    let mut e = Engine::new();
    e.exec("val x = 1;").expect("first");
    assert_eq!(e.eval_to_string("x").expect("runs"), "1");
    e.exec("val x = \"now a string\";").expect("rebind");
    assert_eq!(e.eval_to_string("x").expect("runs"), "\"now a string\"");
    // The old binding is gone for new code, at the new type.
    assert!(e.infer_expr("x + 1").is_err());
}

#[test]
fn failed_declaration_leaves_previous_state_intact() {
    let mut e = Engine::new();
    e.exec("val x = 41;").expect("defines");
    // A program with a type error in the middle: the error is reported,
    // earlier bindings in the same exec stay (declaration granularity).
    let err = e
        .exec("val y = x + 1; val z = y + \"bad\"; val w = 0;")
        .expect_err("fails");
    assert!(matches!(err, Error::Type(_)));
    assert_eq!(e.eval_to_string("y").expect("runs"), "42");
    // The failing and subsequent declarations did not bind.
    assert!(e.scheme_of("z").is_none());
    assert!(e.scheme_of("w").is_none());
}

#[test]
fn outcomes_report_schemes_per_declaration() {
    let mut e = Engine::new();
    let outs = e
        .exec("val a = 1; fun f x = x; class C = class {} end; f a")
        .expect("runs");
    assert_eq!(outs.len(), 4);
    match &outs[0] {
        Outcome::Defined(binds) => {
            assert_eq!(binds[0].0.as_str(), "a");
            assert_eq!(binds[0].1.to_string(), "int");
        }
        other => panic!("expected define, got {other:?}"),
    }
    match &outs[1] {
        Outcome::Defined(binds) => {
            assert_eq!(binds[0].1.to_string(), "∀t1::U. t1 -> t1");
        }
        other => panic!("expected define, got {other:?}"),
    }
    match &outs[3] {
        Outcome::Value { scheme, rendered } => {
            assert_eq!(scheme.to_string(), "int");
            assert_eq!(rendered, "1");
        }
        other => panic!("expected value, got {other:?}"),
    }
}

#[test]
fn classes_persist_and_share_across_statements() {
    let mut e = Engine::new();
    e.load_prelude().expect("prelude");
    e.exec(
        r#"
        class Person = class {} end;
        class Adult = class {}
            include Person as fn p => p
            where fn p => query(fn x => x.Age >= 18, p)
        end;
        "#,
    )
    .expect("classes");
    e.exec(
        r#"
        insert(Person, IDView([Name = "Kid", Age = 10]));
        insert(Person, IDView([Name = "Grown", Age = 30]));
        "#,
    )
    .expect("inserts");
    assert_eq!(e.eval_to_string("csize Person").expect("runs"), "2");
    assert_eq!(e.eval_to_string("csize Adult").expect("runs"), "1");
    e.exec(r#"insert(Person, IDView([Name = "Elder", Age = 80]));"#)
        .expect("insert");
    assert_eq!(e.eval_to_string("csize Adult").expect("runs"), "2");
}

#[test]
fn translate_expr_round_trips_through_engine() {
    let mut e = Engine::new();
    e.exec(r#"val joe = IDView([Name = "Joe", Salary := 2000]);"#)
        .expect("defines");
    let tr = e
        .translate_expr("query(fn x => x.Salary, joe)")
        .expect("translates");
    // The translation references `joe`, whose *runtime* value is a native
    // object, not a pair — translation output is for whole-program use;
    // here we only check it is closed except for the globals it names.
    let fv = polyview::syntax::visit::free_vars(&tr);
    assert!(fv.contains("joe"));
    let shown = tr.to_string();
    assert!(shown.contains(".2"), "applies a view function: {shown}");
}

#[test]
fn value_rendering_of_every_shape() {
    let mut e = Engine::new();
    for (src, expect) in [
        ("()", "()"),
        ("1 + 1", "2"),
        ("\"s\"", "\"s\""),
        ("true andalso false", "false"),
        ("{3, 1, 2}", "{1, 2, 3}"),
        ("[b = 2, a = 1]", "[a = 1, b = 2]"),
        ("(1, \"x\")", "[1 = 1, 2 = \"x\"]"),
    ] {
        assert_eq!(e.eval_to_string(src).expect("runs"), expect, "for {src}");
    }
    // Functions, objects and classes render opaquely but stably.
    assert_eq!(e.eval_to_string("fn x => x").expect("runs"), "<fn>");
    assert!(e
        .eval_to_string("IDView([a = 1])")
        .expect("runs")
        .starts_with("<obj"));
    assert!(e
        .eval_to_string("class {} end")
        .expect("runs")
        .starts_with("<class"));
}

#[test]
fn with_stack_size_runs_deep_programs() {
    let out = polyview::engine::with_stack_size(128 * 1024 * 1024, || {
        let mut e = Engine::new();
        e.exec("fun sum n = if n = 0 then 0 else n + sum (n - 1);")
            .expect("defines");
        e.eval_to_string("sum 3000").expect("runs")
    });
    assert_eq!(out, "4501500");
}

#[test]
fn fuel_limited_engine_reports_exhaustion_not_crash() {
    let mut e = Engine::with_fuel(500);
    let err = e
        .eval_expr("let fun loop x = loop x in loop 0 end")
        .expect_err("halts");
    assert!(matches!(
        err,
        Error::Runtime(polyview::eval::RuntimeError::FuelExhausted)
    ));
    // A fresh engine (or more fuel) recovers; the failure is clean.
    let mut e2 = Engine::new();
    assert_eq!(e2.eval_to_string("1 + 1").expect("runs"), "2");
}

//! The `:profile` attribution profiler end to end (DESIGN.md §14):
//! deterministic trees under an injected `ManualClock`, the
//! `self + Σ children = total` invariant, fallback-site attribution on a
//! mutual-recursion workload whose field ops cannot be index-abstracted,
//! view-recompute attribution naming the class and the invalidating
//! epoch, the JSON-lines / folded-stack renderers, and the mechanical
//! zero-cost-when-off proof (no clock reads while disabled).

use polyview::eval::Env;
use polyview::obs::{jsonl, ManualClock};
use polyview::{Engine, Machine, Profile, ProfileNode};
use std::rc::Rc;

/// Session exercising every attribution channel: a class with a cached
/// extent, and a mutual `fun` group with a row-polymorphic field read
/// (mutual groups stay plain-lowered, so `r.Steps` keeps its dynamic
/// lookup and running it attributes a runtime fallback site).
const SESSION: &str = r#"
    class Staff = class {} end;
    insert(Staff, IDView([Steps := 4]));
    insert(Staff, IDView([Steps := 2]));
    fun step r = r.Steps and same r = step(r);
    fun even n = if n = 0 then true else odd(n - 1)
    and odd n = if n = 0 then false else even(n - 1);
"#;

const WORKLOAD: &str = "cquery(fn s => map(fn o => query(fn x => even(step(x)), o), s), Staff)";

fn profiled_engine() -> Engine {
    let mut e = Engine::new();
    e.set_clock(Rc::new(ManualClock::with_step(10)));
    e.machine().enable_extent_cache(true);
    e.exec(SESSION).expect("session defines");
    e
}

fn assert_frames_consistent(n: &ProfileNode) {
    let child_total: u64 = n.children.iter().map(|c| c.total_ns).sum();
    assert_eq!(
        n.total_ns,
        n.self_ns + child_total,
        "self/total must sum at {} {:?}",
        n.kind,
        n.span
    );
    assert!(n.hits > 0, "a materialised node was entered");
    for c in &n.children {
        assert_frames_consistent(c);
    }
}

// ----- determinism and frame accounting -----

#[test]
fn profile_tree_is_deterministic_under_a_manual_clock() {
    let mut a = profiled_engine();
    let mut b = profiled_engine();
    let ra = a.profile(WORKLOAD).expect("profiles");
    let rb = b.profile(WORKLOAD).expect("profiles");
    assert_eq!(ra.to_json_lines(), rb.to_json_lines());
    assert_eq!(ra.to_folded(), rb.to_folded());
    assert_eq!(ra.to_string(), rb.to_string());
    assert_eq!(ra.eval_ns, rb.eval_ns);
}

#[test]
fn self_plus_children_sums_to_total_everywhere() {
    let mut e = profiled_engine();
    let r = e.profile(WORKLOAD).expect("profiles");
    assert!(!r.profile.roots.is_empty(), "the run built a tree");
    assert_eq!(r.profile.truncated_frames, 0, "well under the depth cap");
    for root in &r.profile.roots {
        assert_frames_consistent(root);
    }
    // Each profiled frame costs exactly two clock reads at step 10, so the
    // whole-statement total is a multiple of the quantum and matches the
    // per-root totals.
    let tree_total: u64 = r.profile.roots.iter().map(|n| n.total_ns).sum();
    assert_eq!(tree_total, r.profile.total_ns());
    assert_eq!(tree_total % 10, 0, "ManualClock quanta only");
    assert!(tree_total > 0);
}

#[test]
fn recursion_grows_a_chain_not_a_cycle() {
    let mut e = profiled_engine();
    // even(6) recurses 7 levels through the mutual group: the tree keys
    // nodes by (parent, node), so the recursion appears as a chain of
    // distinct app frames rather than one self-merged node.
    let r = e.profile("even(6)").expect("profiles");
    fn depth(n: &ProfileNode) -> usize {
        1 + n.children.iter().map(depth).max().unwrap_or(0)
    }
    let max_depth = r.profile.roots.iter().map(depth).max().unwrap();
    assert!(
        max_depth >= 7,
        "recursion depth visible in the tree: {max_depth}"
    );
    for root in &r.profile.roots {
        assert_frames_consistent(root);
    }
}

// ----- fallback-site attribution -----

#[test]
fn row_polymorphic_field_read_in_mutual_group_attributes_fallback_sites() {
    let mut e = profiled_engine();
    let r = e.profile(WORKLOAD).expect("profiles");
    // `step` reads `r.Steps` dynamically once per extent row (3 rows at
    // seed... 2 rows here: the session inserts 4 and 2).
    let site = r
        .profile
        .fallback_sites
        .iter()
        .find(|s| s.label == "Steps")
        .expect("the dynamic read of .Steps is attributed");
    assert_eq!(site.kind, "dot");
    assert_eq!(site.span, "r.Steps");
    assert_eq!(site.count, 2, "one dynamic lookup per extent row");
}

#[test]
fn offset_resolved_statements_attribute_no_fallbacks() {
    let mut e = profiled_engine();
    // A top-level monomorphic field read is offset-resolved by lowering;
    // profiling it must show zero fallback sites.
    e.exec("val solo = [Name = \"Ada\", Steps := 1];")
        .expect("defines");
    let r = e.profile("solo.Steps").expect("profiles");
    assert!(
        r.profile.fallback_sites.is_empty(),
        "offset-resolved access must not attribute fallbacks: {:?}",
        r.profile.fallback_sites
    );
}

// ----- view-recompute attribution -----

#[test]
fn extent_scan_names_the_class_and_the_invalidating_epoch() {
    let mut e = profiled_engine();
    // Warm the cache, then invalidate it with an insert: the profiled
    // statement's scan recomputes at the post-insert epoch.
    e.eval_to_string(WORKLOAD).expect("warm extent");
    e.exec("insert(Staff, IDView([Steps := 6]));")
        .expect("insert invalidates");
    let r = e.profile(WORKLOAD).expect("profiles");
    let v = r
        .profile
        .view_recomputes
        .iter()
        .find(|v| r.class_name(v.class) == "Staff")
        .expect("the Staff extent scan is attributed");
    assert_eq!(v.recomputes, 1, "invalidated cache recomputes once");
    assert_eq!(v.rows_scanned, 3, "all three members rescanned");
    assert!(
        v.invalidating_epoch >= 3,
        "epoch reflects the three mutations: {}",
        v.invalidating_epoch
    );

    // A second profiled run hits the still-warm cache instead.
    let r2 = e.profile(WORKLOAD).expect("profiles again");
    let v2 = r2
        .profile
        .view_recomputes
        .iter()
        .find(|v| r2.class_name(v.class) == "Staff")
        .expect("the cached scan is still attributed");
    assert_eq!(v2.recomputes, 0);
    assert_eq!(v2.cache_hits, 1, "warm extent served from cache");
}

// ----- renderers: JSON lines, folded stacks, hot-node table -----

#[test]
fn json_lines_validate_with_pinned_key_order() {
    let mut e = profiled_engine();
    let r = e.profile(WORKLOAD).expect("profiles");
    let json = r.to_json_lines();
    let mut kinds_seen = std::collections::BTreeSet::new();
    for line in json.lines() {
        let keys = jsonl::check_object_line(line)
            .unwrap_or_else(|err| panic!("invalid JSON line {line:?}: {err:?}"));
        assert_eq!(keys[0], "kind", "kind leads every line: {line}");
        match line.split('"').nth(3).unwrap() {
            "profile.node" => assert_eq!(
                keys,
                ["kind", "path", "node", "span", "hits", "total_ns", "self_ns", "env_hops"]
            ),
            "profile.fallback_site" => {
                assert_eq!(keys, ["kind", "site", "span", "label", "count"])
            }
            "profile.view_recompute" => assert_eq!(
                keys,
                [
                    "kind",
                    "class",
                    "class_id",
                    "recomputes",
                    "cache_hits",
                    "rows_scanned",
                    "invalidating_epoch"
                ]
            ),
            "profile.summary" => assert_eq!(
                keys,
                ["kind", "statement", "eval_ns", "nodes", "truncated_frames"]
            ),
            other => panic!("unexpected line kind {other:?}"),
        }
        kinds_seen.insert(line.split('"').nth(3).unwrap().to_string());
    }
    assert_eq!(
        kinds_seen.into_iter().collect::<Vec<_>>(),
        [
            "profile.fallback_site",
            "profile.node",
            "profile.summary",
            "profile.view_recompute"
        ],
        "every attribution channel emits at least one line"
    );
}

#[test]
fn snippets_with_quotes_escape_into_valid_json() {
    let mut e = profiled_engine();
    let r = e
        .profile(r#"if even(2) then "yes \"sir\"" else "no""#)
        .expect("profiles");
    let json = r.to_json_lines();
    assert!(
        json.contains(r#"\"sir\\\"#),
        "escaped string literal survives in some span: missing from\n{json}"
    );
    for line in json.lines() {
        jsonl::check_object_line(line)
            .unwrap_or_else(|err| panic!("invalid JSON line {line:?}: {err:?}"));
    }
}

#[test]
fn folded_stacks_carry_self_weights_that_sum_to_the_total() {
    let mut e = profiled_engine();
    let r = e.profile(WORKLOAD).expect("profiles");
    let folded = r.to_folded();
    assert!(!folded.is_empty());
    let mut sum = 0u64;
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("`stack weight` shape");
        assert!(!stack.is_empty());
        // Frame separator is `;`, so frames themselves never contain one.
        for frame in stack.split(';') {
            assert!(frame.contains(':'), "frame is kind:span — got {frame:?}");
            assert!(!frame.is_empty());
        }
        sum += weight.parse::<u64>().expect("numeric self weight");
    }
    assert_eq!(
        sum,
        r.profile.total_ns(),
        "folded self weights partition the total"
    );
}

#[test]
fn hot_node_table_renders_and_ranks_by_self_time() {
    let mut e = profiled_engine();
    let r = e.profile(WORKLOAD).expect("profiles");
    let hot = r.profile.hot_nodes();
    assert!(!hot.is_empty());
    for pair in hot.windows(2) {
        assert!(
            pair[0].self_ns >= pair[1].self_ns,
            "hot nodes sorted by self time"
        );
    }
    let shown = r.to_string();
    for needle in [
        "self",
        "total",
        "hits",
        "fallbacks",
        "Staff recomputes=",
        "invalidated-by-epoch",
    ] {
        assert!(shown.contains(needle), "missing {needle:?} in:\n{shown}");
    }
}

// ----- merging (the pool's absorb path) -----

#[test]
fn absorbed_profiles_merge_trees_sites_and_recomputes() {
    // Two fresh engines so the lowering gensym state (and thus the spans)
    // match — the shape a pool merges across identically-seeded replicas.
    let a = profiled_engine()
        .profile(WORKLOAD)
        .expect("profiles")
        .profile;
    let b = profiled_engine()
        .profile(WORKLOAD)
        .expect("profiles")
        .profile;
    let (a_total, b_total) = (a.total_ns(), b.total_ns());
    let a_sites: u64 = a.fallback_sites.iter().map(|s| s.count).sum();
    let b_sites: u64 = b.fallback_sites.iter().map(|s| s.count).sum();

    let mut merged = Profile::default();
    merged.absorb(&a);
    merged.absorb(&b);
    assert_eq!(merged.total_ns(), a_total + b_total);
    assert_eq!(
        merged.fallback_sites.iter().map(|s| s.count).sum::<u64>(),
        a_sites + b_sites
    );
    // Identical trees merge by (kind, span) path instead of duplicating.
    assert_eq!(merged.roots.len(), a.roots.len().max(b.roots.len()));
    for root in &merged.roots {
        assert_frames_consistent(root);
    }
}

// ----- zero-cost-when-off -----

#[test]
fn disabled_profiler_never_reads_the_clock() {
    let counting = Rc::new(ManualClock::with_step(10));
    let mut m = Machine::new();
    m.set_profile_clock(counting.clone());
    assert!(!m.profiling());
    let e = polyview::parser::parse_expr("let f = fn x => x + 1 in f (f 40) end")
        .expect("probe parses");
    let v = m.eval_in(&e, &Env::empty()).expect("probe evaluates");
    assert_eq!(format!("{v:?}"), "Int(42)");
    assert_eq!(counting.reads(), 0, "off path must not touch the clock");

    // Switched on, the same machine reads it — and stop drains the state.
    m.profile_start();
    m.eval_in(&e, &Env::empty()).expect("profiled run");
    let p = m.profile_stop().expect("profile built");
    assert!(counting.reads() > 0);
    assert!(p.total_ns() > 0);
    assert!(!m.profiling(), "stop turns the profiler off");
    let before = counting.reads();
    m.eval_in(&e, &Env::empty()).expect("post-stop run");
    assert_eq!(counting.reads(), before, "off again after stop");
}

#[test]
fn profile_does_not_pollute_the_statement_cache() {
    let mut e = profiled_engine();
    e.profile(WORKLOAD).expect("profiles");
    let before = e.stats();
    e.eval_to_string(WORKLOAD).expect("runs");
    let after = e.stats();
    assert_eq!(
        after.stmt_cache_hits, before.stmt_cache_hits,
        "profile runs bypass the cache, so the first plain run misses"
    );
    assert_eq!(after.stmt_cache_misses, before.stmt_cache_misses + 1);
}

//! The paper, section by section, through the surface language and the
//! engine. Each test reproduces the exact programs (modulo concrete
//! syntax) and results the paper states.

use polyview::{Engine, Error};

fn engine() -> Engine {
    Engine::new()
}

// ===== Section 2: the core language =====

#[test]
fn s2_record_creation_and_identity() {
    let mut e = engine();
    e.exec(r#"val joe = [Name = "Doe", Salary := 3000];"#)
        .expect("defines");
    assert_eq!(
        e.scheme_of("joe").expect("bound").to_string(),
        "[Name = string, Salary := int]"
    );
    // Evaluation of a record expression creates a new identity.
    assert_eq!(
        e.eval_to_string(r#"[Name = "Doe"] == [Name = "Doe"]"#)
            .expect("runs"),
        "false"
    );
    assert_eq!(e.eval_to_string("joe == joe").expect("runs"), "true");
}

#[test]
fn s2_lvalue_sharing_doe_john() {
    // The paper's Doe/john example, verbatim.
    let mut e = engine();
    e.exec(
        r#"
        val joe  = [Name = "Doe", Salary := 3000];
        val Doe  = [Name = "Doe", Income := extract(joe, Salary)];
        val john = [Name = "John", Salary = extract(joe, Salary)];
        update(joe, Salary, 4000);
        "#,
    )
    .expect("runs");
    assert_eq!(e.eval_to_string("Doe.Income").expect("runs"), "4000");
    // john's Salary is immutable yet shares the L-value.
    assert_eq!(e.eval_to_string("john.Salary").expect("runs"), "4000");
}

#[test]
fn s2_illegal_lvalue_uses_rejected() {
    let mut e = engine();
    e.exec(r#"val joe = [Name = "Doe", Salary := 3000];"#)
        .expect("defines");
    // Arithmetic on an extracted L-value (first illegal example).
    let err = e
        .infer_expr(r#"[Name = "Joe Doe", Income = extract(joe, Salary) * 2]"#)
        .expect_err("rejected");
    assert!(err.is_type_error());
    // Extracting the L-value of an immutable field (second illegal
    // example).
    let err = e
        .infer_expr(r#"[Name = extract(joe, Name), Income := joe.Salary]"#)
        .expect_err("rejected");
    assert!(matches!(
        err,
        Error::Type(polyview_types::TypeError::MutabilityViolation { .. })
    ));
}

#[test]
fn s2_update_immutable_rejected() {
    let mut e = engine();
    e.exec(r#"val joe = [Name = "Doe", Salary := 3000];"#)
        .expect("defines");
    assert_eq!(
        e.eval_to_string("let u = update(joe, Salary, 4000) in joe.Salary end")
            .expect("runs"),
        "4000"
    );
    let err = e
        .infer_expr(r#"update(joe, Name, "Peter")"#)
        .expect_err("rejected");
    assert!(matches!(
        err,
        Error::Type(polyview_types::TypeError::MutabilityViolation { .. })
    ));
}

#[test]
fn s2_sets_and_derived_operations() {
    let mut e = engine();
    assert_eq!(
        e.eval_to_string("union({1, 2}, {2, 3})").expect("runs"),
        "{1, 2, 3}"
    );
    assert_eq!(
        e.eval_to_string("hom({1, 2, 3}, fn x => x, fn a => fn b => a + b, 0)")
            .expect("runs"),
        "6"
    );
    assert_eq!(e.eval_to_string("member(2, {1, 2})").expect("runs"), "true");
    assert_eq!(
        e.eval_to_string("map(fn x => x * 10, {1, 2})")
            .expect("runs"),
        "{10, 20}"
    );
    assert_eq!(
        e.eval_to_string("filter(fn x => x > 1, {1, 2, 3})")
            .expect("runs"),
        "{2, 3}"
    );
    // prod of two sets has 4 elements.
    assert_eq!(
        e.eval_to_string(
            "hom(prod({1, 2}, {10, 20}), fn p => p.1 + p.2, fn a => fn b => union({a}, b), {})"
        )
        .expect("runs"),
        "{11, 12, 21, 22}"
    );
}

#[test]
fn s2_mutually_recursive_functions() {
    let mut e = engine();
    e.exec(
        "fun even n = if n = 0 then true else odd (n - 1) \
         and odd n = if n = 0 then false else even (n - 1);",
    )
    .expect("defines");
    assert_eq!(
        e.eval_to_string("(even 4, odd 4)").expect("runs"),
        "[1 = true, 2 = false]"
    );
}

// ===== Section 3: views =====

fn setup_joe(e: &mut Engine) {
    e.exec(
        r#"
        val joe = IDView([Name = "Joe", BirthYear = 1955,
                          Salary := 2000, Bonus := 5000]);
        val joe_view = joe as fn x => [Name = x.Name,
                                       Age = this_year() - x.BirthYear,
                                       Income = x.Salary,
                                       Bonus := extract(x, Bonus)];
        "#,
    )
    .expect("setup");
}

#[test]
fn s33_view_types_match_paper() {
    let mut e = engine();
    setup_joe(&mut e);
    assert_eq!(
        e.scheme_of("joe").expect("bound").to_string(),
        "obj([BirthYear = int, Bonus := int, Name = string, Salary := int])"
    );
    assert_eq!(
        e.scheme_of("joe_view").expect("bound").to_string(),
        "obj([Age = int, Bonus := int, Income = int, Name = string])"
    );
}

#[test]
fn s33_annual_income_is_29000() {
    let mut e = engine();
    setup_joe(&mut e);
    e.exec("fun Annual_Income p = p.Income * 12 + p.Bonus;")
        .expect("defines");
    assert_eq!(
        e.scheme_of("Annual_Income").expect("bound").to_string(),
        "∀t1::[[Bonus = int, Income = int]]. t1 -> int"
    );
    assert_eq!(
        e.eval_to_string("query(Annual_Income, joe_view)")
            .expect("runs"),
        "29000"
    );
}

#[test]
fn s33_objeq_and_view_update() {
    let mut e = engine();
    setup_joe(&mut e);
    assert_eq!(
        e.eval_to_string("objeq(joe, joe_view)").expect("runs"),
        "true"
    );

    e.exec(
        r#"
        val adjustBonus = fn p => query(fn x => update(x, Bonus, x.Income * 3), p);
        adjustBonus joe_view;
        "#,
    )
    .expect("update");
    // After the update, the paper's exact results (Age 39 via
    // this_year() = 1994):
    assert_eq!(
        e.eval_to_string("query(fn x => x, joe_view)")
            .expect("runs"),
        "[Age = 39, Bonus := 6000, Income = 2000, Name = \"Joe\"]"
    );
    assert_eq!(
        e.eval_to_string("query(fn x => x, joe)").expect("runs"),
        "[BirthYear = 1955, Bonus := 6000, Name = \"Joe\", Salary := 2000]"
    );
}

#[test]
fn s33_wealthy_polymorphic_query() {
    let mut e = engine();
    e.exec(
        r#"
        fun Annual_Income p = p.Income * 12 + p.Bonus;
        fun wealthy S = select as fn x => [Name = x.Name, Age = x.Age]
                        from S
                        where fn x => query(Annual_Income, x) > 100000;
        "#,
    )
    .expect("defines");
    let s = e.scheme_of("wealthy").expect("bound").to_string();
    // ∀…[[Age = …, Bonus = int, Income = int, Name = …]].
    //   {obj(t)} → {obj([Age = …, Name = …])}
    assert!(s.contains("Bonus = int"), "got {s}");
    assert!(s.contains("Income = int"), "got {s}");
    assert!(s.contains("{obj("), "got {s}");

    e.exec(
        r#"
        val Employees = {
            IDView([Name = "Rich", Age = 60, Income = 10000, Bonus = 1]),
            IDView([Name = "Poor", Age = 20, Income = 100,   Bonus = 1])
        };
        "#,
    )
    .expect("defines");
    assert_eq!(
        e.eval_to_string("map(fn o => query(fn x => x.Name, o), wealthy Employees)")
            .expect("runs"),
        "{\"Rich\"}"
    );
}

#[test]
fn s31_fuse_and_relobj() {
    let mut e = engine();
    setup_joe(&mut e);
    // fuse of the same raw object: singleton with product views.
    assert_eq!(
        e.eval_to_string(
            "hom(fuse(joe, joe_view), \
                 fn o => query(fn p => (p.1.Salary, p.2.Income), o), \
                 fn a => fn b => a, (0-1, 0-1))"
        )
        .expect("runs"),
        "[1 = 2000, 2 = 2000]"
    );
    // fuse of different raws: empty.
    assert_eq!(
        e.eval_to_string(r#"fuse(joe, IDView([Name = "X"])) == {}"#)
            .expect("runs"),
        "true"
    );
    // relobj creates new identity.
    assert_eq!(
        e.eval_to_string("objeq(relobj(a = joe), relobj(a = joe))")
            .expect("runs"),
        "false"
    );
}

// ===== Section 4: classes =====

#[test]
fn s42_female_member() {
    let mut e = engine();
    e.exec(
        r#"
        class Staff = class {
            IDView([Name = "Alice", Age = 40, Sex = "female"]),
            IDView([Name = "Bob", Age = 50, Sex = "male"])
        } end
        and Student = class {
            IDView([Name = "Carol", Age = 22, Sex = "female"])
        } end;

        class FemaleMember = class {}
            include Staff as fn s => [Name = s.Name, Age = s.Age, Category = "staff"]
            where fn s => query(fn x => x.Sex = "female", s)
            include Student as fn s => [Name = s.Name, Age = s.Age, Category = "student"]
            where fn s => query(fn x => x.Sex = "female", s)
        end;

        fun names c = cquery(fn s => map(fn o => query(fn x => x.Name, o), s), c);
        "#,
    )
    .expect("defines");
    assert_eq!(
        e.scheme_of("FemaleMember").expect("bound").to_string(),
        "class([Age = int, Category = string, Name = string])"
    );
    assert_eq!(
        e.eval_to_string("names FemaleMember").expect("runs"),
        "{\"Alice\", \"Carol\"}"
    );
}

#[test]
fn s42_student_staff_intersection() {
    let mut e = engine();
    e.exec(
        r#"
        val carol = IDView([Name = "Carol", Age = 22, Sex = "female",
                            Salary := 100, Degree := "BSc"]);
        class Staff = class {carol,
            IDView([Name = "Bob", Age = 50, Sex = "male",
                    Salary := 200, Degree := "-"])} end;
        class Student = class {carol} end;
        class StudentStaff = class {}
            include Staff, Student as fn p =>
                [Name = p.1.Name, Age = p.1.Age, Sex = p.1.Sex,
                 Sal := extract(p.1, Salary), Deg := extract(p.2, Degree)]
            where fn p => true
        end;
        fun names c = cquery(fn s => map(fn o => query(fn x => x.Name, o), s), c);
        "#,
    )
    .expect("defines");
    assert_eq!(
        e.eval_to_string("names StudentStaff").expect("runs"),
        "{\"Carol\"}"
    );
    // Mutability transfers through the fused views: update Sal via
    // StudentStaff, observe through carol.
    e.exec("cquery(fn s => map(fn o => query(fn x => update(x, Sal, 999), o), s), StudentStaff);")
        .expect("update");
    assert_eq!(
        e.eval_to_string("query(fn x => x.Salary, carol)")
            .expect("runs"),
        "999"
    );
}

#[test]
fn s44_ill_formed_recursion_rejected() {
    // The paper's C1 = C \ C2 and C2 = C \ C1: ill-typed by the Fig. 6
    // scope restriction.
    let mut e = engine();
    e.exec("class C = class {IDView([n = 1])} end;")
        .expect("defines");
    let err = e
        .exec(
            "class C1 = class {} include C as fn x => x \
                 where fn c => cquery(fn s => not (member(c, s)), C2) end \
             and C2 = class {} include C as fn x => x \
                 where fn c => cquery(fn s => not (member(c, s)), C1) end;",
        )
        .expect_err("rejected");
    assert!(matches!(
        err,
        Error::Type(polyview_types::TypeError::RecClass(_))
    ));
}

#[test]
fn s44_fig7_full_example() {
    let mut e = engine();
    e.exec(
        r#"
        val alice = IDView([Name = "Alice", Age = 40, Sex = "female"]);
        val bob   = IDView([Name = "Bob",   Age = 50, Sex = "male"]);
        val carol = IDView([Name = "Carol", Age = 22, Sex = "female"]);

        class Staff = class {alice, bob}
            include FemaleMember as fn f => [Name = f.Name, Age = f.Age, Sex = "female"]
            where fn f => query(fn x => x.Category = "staff", f)
        end
        and Student = class {carol}
            include FemaleMember as fn f => [Name = f.Name, Age = f.Age, Sex = "female"]
            where fn f => query(fn x => x.Category = "student", f)
        end
        and FemaleMember = class {}
            include Staff as fn s => [Name = s.Name, Age = s.Age, Category = "staff"]
            where fn s => query(fn x => x.Sex = "female", s)
            include Student as fn s => [Name = s.Name, Age = s.Age, Category = "student"]
            where fn s => query(fn x => x.Sex = "female", s)
        end;

        fun names c = cquery(fn s => map(fn o => query(fn x => x.Name, o), s), c);
        "#,
    )
    .expect("defines");
    assert_eq!(
        e.eval_to_string("names Staff").expect("runs"),
        "{\"Alice\", \"Bob\"}"
    );
    assert_eq!(
        e.eval_to_string("names FemaleMember").expect("runs"),
        "{\"Alice\", \"Carol\"}"
    );

    // Mutual sharing: a staff-category FemaleMember flows into Staff.
    e.exec(r#"insert(FemaleMember, IDView([Name = "Fran", Age = 28, Category = "staff"]));"#)
        .expect("insert");
    assert_eq!(
        e.eval_to_string("names Staff").expect("runs"),
        "{\"Alice\", \"Bob\", \"Fran\"}"
    );
    assert_eq!(
        e.eval_to_string("names Student").expect("runs"),
        "{\"Carol\"}"
    );
}

#[test]
fn s41_classes_are_first_class() {
    let mut e = engine();
    e.exec(
        r#"
        fun mk s = class s end;
        val C1 = mk {IDView([n = 1])};
        val C2 = mk {};
        insert(C2, IDView([n = 2]));
        fun count c = cquery(fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0), c);
        "#,
    )
    .expect("defines");
    assert_eq!(
        e.eval_to_string("(count C1, count C2)").expect("runs"),
        "[1 = 1, 2 = 1]"
    );
}

#[test]
fn s31_relation_style_query() {
    let mut e = engine();
    e.exec(
        r#"
        val S = {IDView([a = 1]), IDView([a = 2])};
        val T = {IDView([b = 10]), IDView([b = 20])};
        val rel = relation [l = x, r = y]
                  from x in S, y in T
                  where query(fn p => p.a, x) = 1;
        "#,
    )
    .expect("defines");
    // Sets of records display in identity order, which is
    // creation-order-dependent; check membership rather than order.
    let shown = e
        .eval_to_string("map(fn o => query(fn p => (p.l.a, p.r.b), o), rel)")
        .expect("runs");
    assert!(shown.contains("[1 = 1, 2 = 10]"), "got {shown}");
    assert!(shown.contains("[1 = 1, 2 = 20]"), "got {shown}");
    assert_eq!(shown.matches("[1 = 1").count(), 2, "got {shown}");
}

//! Differential suite for the two execution backends: the offset-resolved
//! compile tier (default) versus pure dynamic label lookup
//! ([`Engine::set_compile_tier`]`(false)`). Every session in the corpus is
//! replayed statement by statement through one fresh engine per backend and
//! the rendered outcomes — values, schemes, bound names, *and* errors —
//! must agree exactly. The tier changes how field operations execute, never
//! what they compute.
//!
//! The final test pins the ISSUE's acceptance property: on the demo/test
//! workloads the compiled tier executes every field access, update, and
//! record construction through integer offsets — zero dynamic-lookup
//! fallbacks.

use polyview::{Engine, Outcome};

/// Multi-statement sessions exercising records, views, classes, updates,
/// polymorphic field functions, aliases, and rebinds. Statements that
/// should *fail* are part of the corpus too: both backends must fail the
/// same way.
const SESSIONS: &[&[&str]] = &[
    // Monomorphic record traffic: construction, dot, destructive update.
    &[
        "val r = [Name = \"Alice\", Age = 40, Salary := 9000];",
        "r.Name",
        "r.Age + 2",
        "update(r, Salary, r.Salary + 500)",
        "r.Salary",
        "[x = 1, y = [z = \"deep\"]].y.z",
    ],
    // Polymorphic functions over kinded record variables: index
    // abstraction at the binding, index application at each use.
    &[
        "fun name x = x.Name;",
        "val get_age = fn x => x.Age;",
        "name [Name = \"Bob\", Age = 50]",
        "name [Name = \"Carol\"]",
        "get_age [Age = 22, Name = \"Dan\"]",
        "fun bump r = update(r, Salary, r.Salary + 1);",
        "let s = [Salary := 10, Name = \"Eve\"] in (bump s).Salary end",
        "fun pair r = [fst = r.A, snd = r.B];",
        "pair [A = 1, B = 2, C = 3]",
    ],
    // Aliases of polymorphic functions and higher-order use.
    &[
        "fun name x = x.Name;",
        "val alias = name;",
        "alias [Name = \"Fay\", Dept = \"CS\"]",
        "map(fn r => r.N, {[N = 1], [N = 2]})",
        "let apply = fn f => fn x => f x in apply name [Name = \"Gil\"] end",
    ],
    // Recursive polymorphic traversal repassing its index parameters.
    &[
        "fun total s = hom(s, fn r => r.Salary, fn a => fn b => a + b, 0);",
        "total {[Salary = 1], [Salary = 2], [Salary = 3]}",
        "fun countdown r = if r.N = 0 then 0 else countdown(update(r, N, r.N - 1));",
        "countdown [N := 5]",
    ],
    // Views and object sharing: the paper's core machinery.
    &[
        "val o = IDView([Name = \"Ann\", Age = 30, Salary := 800]);",
        "query(fn x => x.Name, o)",
        "query(fn x => x.Age, o as fn y => [Age = y.Age + 1])",
        "let u = query(fn x => update(x, Salary, 900), o) in query(fn x => x.Salary, o) end",
        "objeq(o, o as fn x => [Z = 1])",
    ],
    // Classes with inclusion and predicates (demo.pv shape).
    &[
        "val alice = IDView([Name = \"Alice\", Age = 40, Sex = \"female\", Salary := 9000]);",
        "val bob = IDView([Name = \"Bob\", Age = 50, Sex = \"male\", Salary := 7000]);",
        "class Staff = class {alice, bob} end;",
        "class Women = class {} include Staff as fn s => [Name = s.Name] \
         where fn s => query(fn x => x.Sex = \"female\", s) end;",
        "fun names c = cquery(fn s => map(fn o => query(fn x => x.Name, o), s), c);",
        "names Staff",
        "names Women",
        "insert(Staff, IDView([Name = \"Eve\", Age = 31, Sex = \"female\", Salary := 100]));",
        "names Women",
    ],
    // Rebinds mid-session: cache invalidation on both backends.
    &[
        "val r = [A = 1];",
        "r.A",
        "val r = [A = 10, B = 20];",
        "r.A + r.B",
        "fun get x = x.B;",
        "get r",
        "fun get x = x.A;",
        "get r",
    ],
    // Rebinding the *source* of an index-abstracted alias: the alias
    // snapshots the source value at definition time, so calls through it
    // must keep the old behaviour on both backends — even when the source
    // is rebound to a different signature or to a non-function.
    &[
        "val f = fn p => p.Bonus;",
        "val g = f;",
        "g [Bonus = 7, Zed = 1]",
        "val f = fn p => p.Zed;",
        "g [Bonus = 7, Zed = 1]",
        "val h = g;",
        "val f = 42;",
        "val g = true;",
        "h [Bonus = 9]",
    ],
    // Errors must be identical: type errors and runtime errors.
    &[
        "val r = [A = 1];",
        "r.Missing",
        "update(r, A, 2)",
        "1 + \"no\"",
        "query(fn x => x.A, 3)",
    ],
];

/// Render one statement's outcome (or error) canonically.
fn step(e: &mut Engine, src: &str) -> String {
    match e.exec(src) {
        Ok(outcomes) => outcomes
            .iter()
            .map(|o| match o {
                Outcome::Defined(binds) => binds
                    .iter()
                    .map(|(n, s)| format!("{n} : {s}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                Outcome::Value { scheme, rendered } => format!("{rendered} : {scheme}"),
            })
            .collect::<Vec<_>>()
            .join("; "),
        Err(err) => format!("error: {err}"),
    }
}

#[test]
fn both_backends_agree_on_every_session() {
    for (i, session) in SESSIONS.iter().enumerate() {
        let mut offset = Engine::new();
        let mut dynamic = Engine::new();
        dynamic.set_compile_tier(false);
        assert!(offset.compile_tier() && !dynamic.compile_tier());
        for (j, stmt) in session.iter().enumerate() {
            let a = step(&mut offset, stmt);
            let b = step(&mut dynamic, stmt);
            assert_eq!(a, b, "session {i} stmt {j} diverged: {stmt}");
        }
    }
}

#[test]
fn both_backends_agree_on_the_prelude_corpus() {
    // The same program through both backends, prelude loaded, comparing
    // rendered results directly.
    const PROGRAMS: &[&str] = &[
        "map(fn r => r.X * 2, {[X = 1], [X = 2], [X = 3]})",
        "filter(fn r => r.Keep, {[Keep = true, V = 1], [Keep = false, V = 2]})",
        "hom({[W = 2], [W = 3]}, fn r => r.W, fn a => fn b => a * b, 1)",
        "materialize {IDView([a = 5]) as fn x => [b = x.a]}",
    ];
    for src in PROGRAMS {
        let mut offset = Engine::new();
        offset.load_prelude().expect("prelude");
        let mut dynamic = Engine::new();
        dynamic.set_compile_tier(false);
        dynamic.load_prelude().expect("prelude");
        assert_eq!(
            step(&mut offset, src),
            step(&mut dynamic, src),
            "program diverged: {src}"
        );
    }
}

#[test]
fn offset_tier_runs_the_corpus_without_dynamic_fallbacks() {
    // The acceptance gate: on these workloads the compiled tier resolves
    // every user-level field operation to an integer offset. The dynamic
    // backend, by construction, resolves none.
    let mut offset = Engine::new();
    let mut dynamic = Engine::new();
    dynamic.set_compile_tier(false);
    for session in SESSIONS {
        for stmt in *session {
            let _ = step(&mut offset, stmt);
            let _ = step(&mut dynamic, stmt);
        }
    }
    let s = offset.stats();
    assert!(
        s.field_offsets_resolved > 0,
        "corpus must exercise offset ops"
    );
    assert_eq!(
        s.dyn_field_fallbacks, 0,
        "compiled tier fell back to dynamic lookup"
    );
    let d = dynamic.stats();
    assert_eq!(d.field_offsets_resolved, 0, "tier off must stay dynamic");
    assert!(d.dyn_field_fallbacks > 0);
}

//! Fig. 7 of the paper: mutually recursive classes with cyclic sharing.
//!
//! `Staff` and `Student` each include the appropriately-categorized members
//! of `FemaleMember`, while `FemaleMember` includes the female members of
//! both — a cyclic dependence that a partial-order (IS-A) hierarchy cannot
//! express. The visited-set semantics of Section 4.4 guarantees queries
//! terminate (Prop. 5).
//!
//! Run with: `cargo run --example mutual_sharing`

use polyview::Engine;

fn main() {
    let mut engine = Engine::new();

    engine
        .exec(
            r#"
            val alice = IDView([Name = "Alice", Age = 40, Sex = "female"]);
            val bob   = IDView([Name = "Bob",   Age = 50, Sex = "male"]);
            val carol = IDView([Name = "Carol", Age = 22, Sex = "female"]);

            -- Fig. 7, verbatim modulo concrete syntax:
            class Staff = class {alice, bob}
                include FemaleMember as fn f =>
                    [Name = f.Name, Age = f.Age, Sex = "female"]
                where fn f => query(fn x => x.Category = "staff", f)
            end
            and Student = class {carol}
                include FemaleMember as fn f =>
                    [Name = f.Name, Age = f.Age, Sex = "female"]
                where fn f => query(fn x => x.Category = "student", f)
            end
            and FemaleMember = class {}
                include Staff as fn s =>
                    [Name = s.Name, Age = s.Age, Category = "staff"]
                where fn s => query(fn x => x.Sex = "female", s)
                include Student as fn s =>
                    [Name = s.Name, Age = s.Age, Category = "student"]
                where fn s => query(fn x => x.Sex = "female", s)
            end;

            fun names c = cquery(fn s =>
                map(fn o => query(fn x => x.Name, o), s), c);
            "#,
        )
        .expect("Fig. 7 classes define");

    let show = |engine: &mut Engine, class: &str| {
        let names = engine
            .eval_to_string(&format!("names {class}"))
            .expect("query terminates (Prop. 5)");
        println!("{class:>14}: {names}");
        names
    };

    println!("initial extents:");
    assert_eq!(show(&mut engine, "Staff"), "{\"Alice\", \"Bob\"}");
    assert_eq!(show(&mut engine, "Student"), "{\"Carol\"}");
    assert_eq!(show(&mut engine, "FemaleMember"), "{\"Alice\", \"Carol\"}");

    // Insert Fran directly into FemaleMember as staff: the *reverse*
    // include makes her a Staff member too — mutual sharing in action.
    engine
        .exec(
            r#"insert(FemaleMember,
                      IDView([Name = "Fran", Age = 28, Category = "staff"]));"#,
        )
        .expect("insert");
    println!("after inserting Fran (staff) into FemaleMember:");
    assert_eq!(show(&mut engine, "Staff"), "{\"Alice\", \"Bob\", \"Fran\"}");
    assert_eq!(show(&mut engine, "Student"), "{\"Carol\"}");
    assert_eq!(
        show(&mut engine, "FemaleMember"),
        "{\"Alice\", \"Carol\", \"Fran\"}"
    );

    // And a student-category member flows into Student the same way.
    engine
        .exec(
            r#"insert(FemaleMember,
                      IDView([Name = "Gina", Age = 20, Category = "student"]));"#,
        )
        .expect("insert");
    println!("after inserting Gina (student) into FemaleMember:");
    assert_eq!(show(&mut engine, "Student"), "{\"Carol\", \"Gina\"}");

    println!("mutual_sharing OK");
}

//! Payroll with access-restricted views and L-value sharing.
//!
//! Scenario: HR holds the raw employee records. Two departments get
//! different views of the *same* objects — finance sees salaries and may
//! adjust bonuses; the directory service sees only names and ages and can
//! update nothing. Updates made by finance are visible through every view
//! because views are evaluated lazily against the shared raw objects.
//!
//! Run with: `cargo run --example payroll_views`

use polyview::Engine;

fn main() {
    let mut engine = Engine::new();

    engine
        .exec(
            r#"
            val employees = {
                IDView([Name = "Ada",    BirthYear = 1955, Salary := 9000, Bonus := 500]),
                IDView([Name = "Barbara",BirthYear = 1960, Salary := 8000, Bonus := 900]),
                IDView([Name = "Kurt",   BirthYear = 1958, Salary := 2000, Bonus := 100])
            };

            -- Finance: salary data visible, bonus mutable, name immutable.
            val finance = select as fn x => [Name   = x.Name,
                                             Income = x.Salary,
                                             Bonus  := extract(x, Bonus)]
                          from employees
                          where fn o => true;

            -- Directory: names and ages only; nothing mutable.
            val directory = select as fn x => [Name = x.Name,
                                               Age  = this_year() - x.BirthYear]
                            from employees
                            where fn o => true;
            "#,
        )
        .expect("setup");

    // The directory view cannot leak or mutate salaries: those programs
    // are statically rejected.
    let leak = engine.infer_expr("map(fn o => query(fn x => x.Salary, o), directory)");
    println!("directory salary leak rejected: {}", leak.unwrap_err());
    let poke =
        engine.infer_expr("map(fn o => query(fn x => update(x, Name, \"?\"), o), directory)");
    println!("directory name update rejected: {}", poke.unwrap_err());

    // Finance runs the paper's wealthy query…
    engine
        .exec("fun annual_income p = p.Income * 12 + p.Bonus;")
        .expect("defines");
    let wealthy = engine
        .eval_to_string(
            "map(fn o => query(fn x => x.Name, o), \
             filter(fn o => query(annual_income, o) > 50000, finance))",
        )
        .expect("runs");
    println!("wealthy (by annual income > 50k): {wealthy}");
    assert_eq!(wealthy, "{\"Ada\", \"Barbara\"}");

    // …then gives everyone earning less than 60k a 1000 bonus raise
    // (only Kurt qualifies: 2000·12 + 100 = 24100).
    engine
        .exec(
            "map(fn o => query(fn x => \
                 if annual_income x < 60000 \
                 then update(x, Bonus, x.Bonus + 1000) \
                 else (), o), finance);",
        )
        .expect("raise runs");

    // The raise is visible through the raw objects (same L-values).
    let bonuses = engine
        .eval_to_string("map(fn o => query(fn x => x.Bonus, o), employees)")
        .expect("runs");
    println!("raw bonuses after raise: {bonuses}");
    assert_eq!(bonuses, "{500, 900, 1100}");

    // And the directory still sees exactly names and ages.
    let dir = engine
        .eval_to_string("map(fn o => query(fn x => x, o), directory)")
        .expect("runs");
    println!("directory sees: {dir}");

    println!("payroll_views OK");
}

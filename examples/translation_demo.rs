//! The paper's translation semantics, visibly: print `tr(e)` for the
//! running examples (Fig. 3 for objects/views, Fig. 5 + §4.4 for classes)
//! and check that source and translation evaluate to the same results.
//!
//! Run with: `cargo run --example translation_demo`

use polyview::eval::Machine;
use polyview::parser::parse_expr;
use polyview::trans::{classes, translate, views};

fn demo(title: &str, src: &str) {
    println!("── {title} ──");
    println!("source     : {src}");
    let e = parse_expr(src).expect("parses");
    let tr = translate(&e);
    assert!(!views::has_view_constructs(&tr));
    assert!(!classes::has_class_constructs(&tr));
    let shown = tr.to_string();
    if shown.len() > 400 {
        println!("translated : {}… ({} chars)", &shown[..400], shown.len());
    } else {
        println!("translated : {shown}");
    }
    let native = {
        let mut m = Machine::new();
        let v = m.eval(&e).expect("native eval");
        m.show(&v)
    };
    let via_tr = {
        let mut m = Machine::new();
        let v = m.eval(&tr).expect("translated eval");
        m.show(&v)
    };
    println!("native     = {native}");
    println!("translated = {via_tr}");
    assert_eq!(native, via_tr, "the two semantics must agree");
    println!();
}

fn main() {
    // Fig. 3: tr(IDView(e)) = (tr(e), λx.x) — and query applies the view
    // to the raw object.
    demo(
        "Fig. 3 — IDView and query",
        r#"query(fn x => x.Salary,
               IDView([Name = "Joe", Salary := 2000]))"#,
    );

    // Fig. 3: view composition becomes function composition on the pair's
    // second component.
    demo(
        "Fig. 3 — view composition (as)",
        r#"query(fn p => p.Income * 12,
               IDView([Name = "Joe", Salary := 2000])
                 as fn x => [Income = x.Salary])"#,
    );

    // Fig. 3: fuse compares raw identities and pairs the views.
    demo(
        "Fig. 3 — fuse (generalized object equality)",
        r#"let joe = IDView([Name = "Joe", Salary := 2000]) in
             eq(fuse(joe, joe as fn x => [Income = x.Salary]), {})
           end"#,
    );

    // Fig. 5: a class becomes [OwnExt := S, Ext = λ().…]; c-query forces
    // the delayed extent.
    demo(
        "Fig. 5 — class and c-query",
        r#"let Staff = class {IDView([Name = "Alice", Sex = "female"]),
                             IDView([Name = "Bob", Sex = "male"])} end in
             cquery(fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0),
                    let F = class {}
                        include Staff as fn s => [Name = s.Name]
                        where fn s => query(fn x => x.Sex = "female", s)
                    end in F end)
           end"#,
    );

    // §4.4: recursive classes become the mutually recursive f^i functions
    // with the visited-set parameter L (a set of class indices).
    demo(
        "§4.4 — recursive classes (visited-set functions)",
        r#"let class A = class {IDView([n = 1])}
                  include B as fn x => x where fn x => true end
           and B = class {IDView([n = 2])}
                  include A as fn x => x where fn x => true end
           in cquery(fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0), A)
           end"#,
    );

    println!("translation_demo OK");
}

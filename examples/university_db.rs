//! A university database: classes with general object sharing
//! (Section 4.2's FemaleMember and StudentStaff examples) driven through
//! the [`polyview::Database`] facade.
//!
//! Run with: `cargo run --example university_db`

use polyview::Database;

fn main() {
    let mut db = Database::new();

    // Base classes with their own extents.
    db.exec(
        r#"
        val alice = IDView([Name = "Alice", Age = 40, Sex = "female"]);
        val bob   = IDView([Name = "Bob",   Age = 50, Sex = "male"]);
        val carol = IDView([Name = "Carol", Age = 22, Sex = "female"]);
        val dave  = IDView([Name = "Dave",  Age = 23, Sex = "male"]);

        class Staff   = class {alice, bob} end;
        class Student = class {carol, dave} end;
        "#,
    )
    .expect("base classes");

    println!("Staff   : {}", db.schema("Staff").expect("bound"));
    println!("Student : {}", db.schema("Student").expect("bound"));

    // FemaleMember (paper Section 4.2): shares the female objects of Staff
    // and Student under a view that hides Sex and adds Category.
    db.exec(
        r#"
        class FemaleMember = class {}
            include Staff as fn s => [Name = s.Name, Age = s.Age,
                                      Category = "staff"]
            where fn s => query(fn x => x.Sex = "female", s)
            include Student as fn s => [Name = s.Name, Age = s.Age,
                                        Category = "student"]
            where fn s => query(fn x => x.Sex = "female", s)
        end;
        "#,
    )
    .expect("FemaleMember");
    println!(
        "FemaleMember : {}",
        db.schema("FemaleMember").expect("bound")
    );
    println!("FemaleMember extent:");
    for row in db.dump("FemaleMember").expect("dump") {
        println!("  {row}");
    }
    assert_eq!(db.count("FemaleMember").expect("count"), 2);

    // Extents are lazy: hiring Eve makes her a FemaleMember immediately.
    db.exec(r#"insert(Staff, IDView([Name = "Eve", Age = 31, Sex = "female"]));"#)
        .expect("hire");
    assert_eq!(db.count("FemaleMember").expect("count"), 3);
    println!("after hiring Eve, FemaleMember has {} members", 3);

    // StudentStaff (paper Section 4.2): the intersection class. Carol takes
    // a staff job, so she is both a student and staff — one object, two
    // classes, fused views.
    db.exec(
        r#"
        insert(Staff, carol);
        class StudentStaff = class {}
            include Staff, Student as fn p =>
                [Name = p.1.Name, Age = p.1.Age, IsStudentStaff = true]
            where fn p => true
        end;
        "#,
    )
    .expect("StudentStaff");
    println!("StudentStaff extent:");
    for row in db.dump("StudentStaff").expect("dump") {
        println!("  {row}");
    }
    assert_eq!(db.count("StudentStaff").expect("count"), 1);

    // Relation-style query (Section 3.1): mentorship pairs between staff
    // and students of the same sex, as relation objects.
    let mentors = db
        .eval(
            r#"
            cquery(fn staff =>
              cquery(fn students =>
                map(fn o => query(fn p => (p.mentor.Name, p.mentee.Name), o),
                    relation [mentor = s, mentee = t]
                    from s in staff, t in students
                    where query(fn x => x.Sex, s) = query(fn y => y.Sex, t)),
                Student),
              Staff)
            "#,
        )
        .expect("relation query");
    println!("same-sex mentor pairs: {mentors}");

    println!("university_db OK");
}

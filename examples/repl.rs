//! An interactive top-level for the calculus.
//!
//! ```text
//! cargo run --example repl
//! polyview> val joe = IDView([Name = "Joe", Salary := 2000]);
//! joe : obj([Name = string, Salary := int])
//! polyview> query(fn x => x.Salary, joe)
//! 2000 : int
//! ```
//!
//! Also accepts a file argument: `cargo run --example repl -- prog.pv`
//! executes the file and prints each declaration's outcome.

use polyview::{Engine, Outcome};
use std::io::{BufRead, Write};

fn report(engine: &Engine, outcomes: &[Outcome]) {
    for o in outcomes {
        match o {
            Outcome::Defined(names) => {
                for (n, s) in names {
                    println!("{n} : {s}");
                }
            }
            Outcome::Value { scheme, rendered } => {
                println!("{rendered} : {scheme}");
            }
        }
    }
    let _ = engine;
}

fn main() {
    let mut engine = Engine::new();

    if let Some(path) = std::env::args().nth(1) {
        let src =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match engine.exec(&src) {
            Ok(outcomes) => report(&engine, &outcomes),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("polyview — a polymorphic calculus for views and object sharing");
    println!("type declarations or expressions; :q quits, :t EXPR shows a type");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("polyview> ");
        std::io::stdout().flush().expect("flush");
        line.clear();
        if stdin.lock().read_line(&mut line).expect("read") == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if input == ":q" {
            break;
        }
        if let Some(rest) = input.strip_prefix(":t ") {
            match engine.infer_expr(rest) {
                Ok(s) => println!("{rest} : {s}"),
                Err(e) => println!("{e}"),
            }
            continue;
        }
        match engine.exec(input) {
            Ok(outcomes) => report(&engine, &outcomes),
            Err(e) => println!("{e}"),
        }
    }
}

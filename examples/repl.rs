//! An interactive top-level for the calculus.
//!
//! ```text
//! cargo run --example repl
//! polyview> val joe = IDView([Name = "Joe", Salary := 2000]);
//! joe : obj([Name = string, Salary := int])
//! polyview> query(fn x => x.Salary, joe)
//! 2000 : int
//! ```
//!
//! Also accepts a file argument: `cargo run --example repl -- prog.pv`
//! executes the file and prints each declaration's outcome.
//!
//! Observability commands (see DESIGN.md §9 and §14): `:stats` prints the
//! pipeline counters, `:trace on|off` toggles span emission to stderr as
//! JSON lines, `:explain STMT` compiles and runs a statement with every
//! phase timed, `:profile STMT` runs one with the evaluation profiler
//! attached (hot-node table, fallback sites, view recomputes),
//! `:metrics` dumps the full registry as JSON lines, and `:health`
//! prints the engine-level health verdict derived from the same
//! counters (`EngineStats::health_reasons`).

use polyview::obs::JsonLinesSink;
use polyview::{Engine, Outcome};
use std::io::{BufRead, Write};
use std::rc::Rc;

fn report(engine: &Engine, outcomes: &[Outcome]) {
    for o in outcomes {
        match o {
            Outcome::Defined(names) => {
                for (n, s) in names {
                    println!("{n} : {s}");
                }
            }
            Outcome::Value { scheme, rendered } => {
                println!("{rendered} : {scheme}");
            }
        }
    }
    let _ = engine;
}

fn main() {
    let mut engine = Engine::new();

    if let Some(path) = std::env::args().nth(1) {
        let src =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match engine.exec(&src) {
            Ok(outcomes) => report(&engine, &outcomes),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("polyview — a polymorphic calculus for views and object sharing");
    println!("type declarations or expressions; :q quits, :t EXPR shows a type");
    println!(
        ":stats, :trace on|off, :explain STMT, :profile STMT, :metrics, :health show pipeline internals"
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("polyview> ");
        std::io::stdout().flush().expect("flush");
        line.clear();
        if stdin.lock().read_line(&mut line).expect("read") == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if input == ":q" {
            break;
        }
        if let Some(rest) = input.strip_prefix(":t ") {
            match engine.infer_expr(rest) {
                Ok(s) => println!("{rest} : {s}"),
                Err(e) => println!("{e}"),
            }
            continue;
        }
        if input == ":stats" {
            println!("{}", engine.stats());
            continue;
        }
        if input == ":health" {
            // The same engine-level verdict the pool's HealthModel folds
            // into its per-worker rows: empty reasons means healthy.
            let reasons = engine.stats().health_reasons();
            if reasons.is_empty() {
                println!("healthy");
            } else {
                println!("degraded:");
                for r in &reasons {
                    println!("  - {r}");
                }
            }
            continue;
        }
        if input == ":metrics" {
            print!("{}", engine.metrics_json());
            continue;
        }
        if let Some(rest) = input.strip_prefix(":trace") {
            match rest.trim() {
                "on" => {
                    engine.set_trace_sink(Rc::new(JsonLinesSink::new(std::io::stderr())));
                    println!("tracing on (spans to stderr as JSON lines)");
                }
                "off" => {
                    engine.set_tracing(false);
                    println!("tracing off");
                }
                _ => println!("usage: :trace on|off"),
            }
            continue;
        }
        if let Some(rest) = input.strip_prefix(":explain ") {
            match engine.explain(rest) {
                Ok(report) => println!("{report}"),
                Err(e) => println!("{e}"),
            }
            continue;
        }
        if let Some(rest) = input.strip_prefix(":profile ") {
            match engine.profile(rest) {
                Ok(report) => println!("{report}"),
                Err(e) => println!("{e}"),
            }
            continue;
        }
        match engine.exec(input) {
            Ok(outcomes) => report(&engine, &outcomes),
            Err(e) => println!("{e}"),
        }
    }
}

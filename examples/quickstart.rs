//! Quickstart: the paper's running example (Section 3.3) end to end.
//!
//! Run with: `cargo run --example quickstart`

use polyview::Engine;

fn main() {
    let mut engine = Engine::new();

    // A raw object: an identity-carrying record with mutable and immutable
    // fields (paper Section 2).
    engine
        .exec(
            r#"
            val joe = IDView([Name = "Joe", BirthYear = 1955,
                              Salary := 2000, Bonus := 5000]);
            "#,
        )
        .expect("joe defines");
    println!("joe : {}", engine.scheme_of("joe").expect("bound"));

    // A view: rename Salary to Income, hide BirthYear, compute Age, keep
    // Bonus updatable by transferring its L-value with extract.
    engine
        .exec(
            r#"
            val joe_view = joe as fn x =>
                [Name   = x.Name,
                 Age    = this_year() - x.BirthYear,
                 Income = x.Salary,
                 Bonus  := extract(x, Bonus)];
            "#,
        )
        .expect("joe_view defines");
    println!(
        "joe_view : {}",
        engine.scheme_of("joe_view").expect("bound")
    );

    // Queries evaluate views lazily. Annual_Income is the paper's
    // polymorphic query: ∀t::[[Income = int, Bonus = int]]. t → int.
    engine
        .exec("fun annual_income p = p.Income * 12 + p.Bonus;")
        .expect("annual_income defines");
    println!(
        "annual_income : {}",
        engine.scheme_of("annual_income").expect("bound")
    );
    let income = engine
        .eval_to_string("query(annual_income, joe_view)")
        .expect("query runs");
    println!("query(annual_income, joe_view) = {income}");
    assert_eq!(income, "29000");

    // joe and joe_view are the same object (objeq), though distinct
    // associations (eq).
    println!(
        "objeq(joe, joe_view) = {}",
        engine.eval_to_string("objeq(joe, joe_view)").expect("runs")
    );

    // View update: adjust the Bonus through the view; the change is
    // reflected in the raw object and every other view of it.
    engine
        .exec(
            r#"
            val adjustBonus = fn p =>
                query(fn x => update(x, Bonus, x.Income * 3), p);
            adjustBonus joe_view;
            "#,
        )
        .expect("update runs");
    let through_view = engine
        .eval_to_string("query(fn x => x, joe_view)")
        .expect("runs");
    let through_raw = engine
        .eval_to_string("query(fn x => x, joe)")
        .expect("runs");
    println!("after adjustBonus:");
    println!("  joe_view sees {through_view}");
    println!("  joe      sees {through_raw}");
    assert!(through_view.contains("Bonus := 6000"));
    assert!(through_raw.contains("Bonus := 6000"));

    println!("quickstart OK");
}

//! A miniature serving deployment of the pool (`crates/pool`,
//! DESIGN.md §10): several "client" threads issue writes and queries
//! against a replicated engine fleet, a worker crash is injected halfway
//! through, and the run ends with a convergence check plus the pool's
//! aggregated stats.
//!
//! The pool handle itself stays on the main thread (the router is
//! single-threaded by design); client threads hand their statements over a
//! plain channel, which is exactly the shape a network front-end would
//! take: accept loops parse requests, one router owns the fleet.
//!
//! With `--trace`, request telemetry is enabled (DESIGN.md §11): every
//! trace event of the run is printed to **stdout** as one JSON object per
//! line (prose moves to stderr), after being validated by the std-only
//! JSON checker in `polyview::obs::jsonl` — the `verify.sh` trace-smoke
//! gate consumes this stream.

//! With `--listen ADDR` the example becomes a real network front door
//! instead: it binds a `polyview_net::NetServer` on `ADDR` (port 0 for
//! ephemeral), optionally writes the resolved address to `--addr-file
//! PATH` for scripted clients (`examples/loadgen.rs`), serves until
//! `--requests N` frames have been decoded (or stdin reaches EOF when
//! no bound is given), then drains gracefully and prints both net and
//! pool stats. `--stats-interval MS` enables the pool's stats window
//! and emits a self-validated introspection snapshot (the same object
//! the `stats` wire op serves) to stdout every `MS` milliseconds — the
//! verify.sh stats gate consumes this stream. `--trace` works in this
//! mode too, dumping the combined `net.*` + pool + engine event
//! stream. The default in-process mode (`--in-process` to name it
//! explicitly) is unchanged.
//!
//! Durability (DESIGN.md §17, both modes): `--checkpoint-every N` makes
//! replicas publish an engine checkpoint every N applied writes —
//! bounding what a respawn replays and letting the router compact the
//! log — and `--snapshot-dir DIR` persists the newest checkpoint so a
//! restarted server resumes from it instead of empty. The verify.sh
//! snapshot gate drives both.

use polyview_net::{NetConfig, NetServer};
use polyview_pool::{CollectingEventSink, Pool, PoolConfig, Submit, WindowConfig};
use std::io::Read as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tracing = args.iter().any(|a| a == "--trace");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let durability = Durability {
        checkpoint_every: flag_value("--checkpoint-every")
            .map(|n| n.parse::<u64>().expect("--checkpoint-every N")),
        snapshot_dir: flag_value("--snapshot-dir"),
    };
    if let Some(addr) = flag_value("--listen") {
        let addr_file = flag_value("--addr-file");
        let requests = flag_value("--requests").map(|n| n.parse::<u64>().expect("--requests N"));
        let stats_interval = flag_value("--stats-interval")
            .map(|n| n.parse::<u64>().expect("--stats-interval MS").max(1));
        run_listen(
            &addr,
            addr_file.as_deref(),
            requests,
            tracing,
            stats_interval,
            &durability,
        );
        return;
    }
    run_in_process(tracing, &durability);
}

/// The two durability flags, applied to either serving mode's pool.
struct Durability {
    checkpoint_every: Option<u64>,
    snapshot_dir: Option<String>,
}

impl Durability {
    fn apply(&self, mut cfg: PoolConfig) -> PoolConfig {
        if let Some(n) = self.checkpoint_every {
            cfg = cfg.checkpoint_every(n);
        }
        if let Some(dir) = &self.snapshot_dir {
            cfg = cfg.snapshot_dir(dir);
        }
        cfg
    }
}

/// Serve the pool over TCP until the frame budget (or stdin) runs out.
fn run_listen(
    addr: &str,
    addr_file: Option<&str>,
    requests: Option<u64>,
    tracing: bool,
    stats_interval_ms: Option<u64>,
    durability: &Durability,
) {
    let sink = Arc::new(CollectingEventSink::new());
    let mut pool_cfg = durability.apply(PoolConfig::default().workers(4).queue_capacity(256));
    if tracing {
        pool_cfg = pool_cfg.event_sink(sink.clone());
    }
    if let Some(ms) = stats_interval_ms {
        // Half the emit period so every emitter pass takes a fresh
        // snapshot even with scheduling jitter.
        pool_cfg = pool_cfg.stats_window(WindowConfig {
            capacity: 16,
            interval_ns: (ms * 1_000_000 / 2).max(1),
        });
    }
    let cfg = NetConfig::default()
        .pool(pool_cfg)
        .max_conns(32)
        .max_in_flight(16);
    let server = NetServer::bind(addr, cfg).expect("bind listen address");
    eprintln!("listening on {}", server.local_addr());
    if let Some(path) = addr_file {
        // The file's appearance is the readiness signal for clients, so
        // write the whole address atomically via a rename.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{}\n", server.local_addr())).expect("write addr file");
        std::fs::rename(&tmp, path).expect("publish addr file");
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        if let Some(ms) = stats_interval_ms {
            let server = &server;
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                    emit_stats_line(&server.stats_json());
                }
            });
        }
        match requests {
            Some(target) => {
                // Exit once the wire has carried `target` decoded frames;
                // scripted runs (verify.sh) size their loadgen to match.
                while server.stats().frames_decoded < target {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
            None => {
                // Serve until the operator closes stdin.
                let mut sink = Vec::new();
                let _ = std::io::stdin().read_to_end(&mut sink);
            }
        }
        stop.store(true, Ordering::SeqCst);
    });
    // One final snapshot after the load, so bounded runs always emit at
    // least one line with the whole run inside its window.
    if stats_interval_ms.is_some() {
        emit_stats_line(&server.stats_json());
    }
    eprintln!("{}", server.stats());
    let mut pool = server.drain();
    let _ = pool.drain();
    eprintln!("\n{}", pool.stats());
    pool.shutdown();
    if tracing {
        dump_events(&sink);
    }
}

/// Validate one introspection snapshot and print it to stdout — every
/// emitted line has already survived the same zero-dep JSON checker the
/// verify gates run, plus a required-key sweep.
fn emit_stats_line(line: &str) {
    let keys = polyview::obs::jsonl::check_object_line(line)
        .unwrap_or_else(|e| panic!("malformed stats line ({e}): {line}"));
    for required in [
        "at_ns",
        "health",
        "window",
        "cumulative",
        "per_worker",
        "net",
    ] {
        assert!(
            keys.iter().any(|k| k == required),
            "stats line missing key {required:?}: {line}"
        );
    }
    println!("{line}");
}

/// Validate and print every collected trace event, one JSON object per
/// line on stdout (the verify.sh trace gates consume this stream).
fn dump_events(sink: &CollectingEventSink) {
    let events = sink.take();
    let mut checked = 0usize;
    for ev in &events {
        let line = ev.to_json();
        let keys = polyview::obs::jsonl::check_object_line(&line)
            .unwrap_or_else(|e| panic!("malformed event line ({e}): {line}"));
        for required in ["kind", "name", "trace_id", "start_ns", "dur_ns"] {
            assert!(
                keys.iter().any(|k| k == required),
                "event line missing key {required:?}: {line}"
            );
        }
        checked += 1;
        println!("{line}");
    }
    eprintln!("emitted {checked} trace events, all validated");
}

fn run_in_process(tracing: bool, durability: &Durability) {
    // Prose goes to stdout normally, but to stderr under --trace, where
    // stdout is reserved for the JSON event stream.
    macro_rules! say {
        ($($t:tt)*) => {
            if tracing { eprintln!($($t)*) } else { println!($($t)*) }
        };
    }

    let mut cfg = durability.apply(PoolConfig::default().workers(4).queue_capacity(32));
    let sink = Arc::new(CollectingEventSink::new());
    if tracing {
        // Collect in memory and dump at the end: the event stream stays
        // ordered per trace and the demo's timing is unaffected. A slow
        // threshold is set so the stats block demonstrates the slow log.
        cfg = cfg.event_sink(sink.clone()).slow_threshold_ns(200_000);
    }
    let mut pool = Pool::new(cfg);

    // Schema + seed data: writes are sequenced through the declaration log
    // and replayed on every replica.
    pool.run(0, "class Staff = class {} end;").expect("class");
    pool.run(
        0,
        "class Female = class {} include Staff as fn x => [Name = x.Name] \
         where fn x => query(fn p => p.Sex = \"female\", x) end;",
    )
    .expect("view class");

    // Simulated clients: each thread is a session, producing a stream of
    // statements; the main thread routes them with session affinity.
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    let clients: Vec<_> = (1..=4u64)
        .map(|session| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..5 {
                    let name = format!("S{session}-{i}");
                    let sex = if i % 2 == 0 { "female" } else { "male" };
                    tx.send((
                        session,
                        format!("insert(Staff, IDView([Name = \"{name}\", Sex = \"{sex}\"]))"),
                    ))
                    .unwrap();
                    tx.send((
                        session,
                        "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Female)".into(),
                    ))
                    .unwrap();
                }
            })
        })
        .collect();
    drop(tx);

    let mut served = 0u64;
    for (n, (session, stmt)) in rx.iter().enumerate() {
        // Blocking submit: retries on backpressure, waits for the result.
        pool.run(session, &stmt).expect("statement");
        served += 1;
        if n == 10 {
            // Chaos: kill a replica mid-stream. Supervision respawns it and
            // the replacement replays the log from offset 0.
            pool.inject_worker_panic(1);
            say!("-- injected crash on worker 1 --");
        }
    }
    for c in clients {
        c.join().unwrap();
    }

    // Convergence: after a barrier, every replica (including the respawn)
    // answers the same query identically.
    pool.barrier().expect("barrier");
    let expected = pool
        .probe_worker(
            0,
            "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)",
        )
        .expect("probe");
    for w in 1..pool.worker_count() {
        let got = pool
            .probe_worker(
                w,
                "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)",
            )
            .expect("probe");
        assert_eq!(got, expected, "replica {w} diverged");
    }
    say!("served {served} statements; all replicas agree on {expected}");

    // One backpressure demonstration: saturate a paused replica's queue.
    let gate = pool.pause_worker(0).expect("pause");
    let mut queued = 0;
    while let Submit::Queued(_) = pool.submit_read(0, "1 + 1").expect("classified") {
        queued += 1;
    }
    gate.release();
    say!("backpressure after {queued} queued reads: Submit::Full");

    say!("\n{}", pool.stats());
    pool.shutdown();

    if tracing {
        // Dump the event stream: one JSON object per line on stdout, each
        // line self-validated by the zero-dep checker before it is
        // printed — a malformed export fails the run, not just the gate.
        dump_events(&sink);
    }
}

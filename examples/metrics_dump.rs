//! Run a small Section 4 session and dump the engine's metrics registry as
//! JSON lines on stdout — one JSON object per line.
//!
//! `scripts/verify.sh` pipes this through a JSON parser to check the export
//! format and the statement cache's behavior under an unrelated rebind
//! (hits > 0, no dependency invalidations); it is also a minimal example of
//! reading the observability layer programmatically.

use polyview::Engine;

fn main() {
    let mut engine = Engine::new();
    engine
        .exec(
            r#"
            val joe = IDView([Name = "Joe", Salary := 2000]);
            class Employee = class {joe} end;
            "#,
        )
        .expect("session defines");
    // Run one statement twice so cache hits and misses both show up.
    for _ in 0..2 {
        engine
            .eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Salary, o), s), Employee)")
            .expect("query runs");
    }
    // Rebind a name the query never mentions: per-name dependency
    // invalidation keeps the cached compilation warm, so the third run is
    // another hit and `engine.stmt_cache_dep_invalidations` stays 0.
    engine.exec("val unrelated = 1;").expect("rebind");
    engine
        .eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Salary, o), s), Employee)")
        .expect("query runs");
    // Polymorphic field traffic through the compile tier: an
    // index-abstracted function, a direct offset update, and a record
    // construction. `scripts/verify.sh` asserts this whole session runs
    // with `eval.dyn_field_fallbacks` exactly 0.
    engine
        .exec("fun raise r = update(r, Salary, r.Salary + 100);")
        .expect("fun defines");
    engine
        .eval_to_string(
            "let s = [Name = \"Ada\", Salary := 900] in \
             let u = raise s in s.Salary end end",
        )
        .expect("raise runs");
    print!("{}", engine.metrics_json());
}

//! Wire-level load generator for the TCP front door
//! (`examples/pool_server.rs --listen`).
//!
//! Drives the E9 90/10 mix from the benchmark suite over loopback:
//! each client thread owns one connection and one session, and issues
//! 90% view reads (`cquery` over the `Female` view) to 10% base-class
//! inserts, using the same `Staff`/`Female` schema as the in-process
//! demo. The schema itself is installed first over a separate
//! connection with a single `batch` frame — one ticket, one log-lock
//! hold for both declarations.
//!
//! Frame budget (for pairing with `pool_server --requests N`):
//! exactly `1 + clients + requests` frames are sent — the setup batch,
//! one `hello` per client, and one `stmt` per request. `busy`
//! responses are retried (and counted); anything else unexpected
//! aborts the run.
//!
//! ```text
//! loadgen --addr 127.0.0.1:4000 [--requests 200] [--clients 4]
//! loadgen --addr-file /tmp/addr [--requests 200] [--clients 4]
//! ```

use polyview_net::{ClientError, NetClient};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let requests: u64 = flag_value("--requests").map_or(200, |n| n.parse().expect("--requests N"));
    let clients: u64 = flag_value("--clients").map_or(4, |n| n.parse().expect("--clients N"));
    let clients = clients.max(1);
    let addr = match (flag_value("--addr"), flag_value("--addr-file")) {
        (Some(addr), _) => addr,
        (None, Some(path)) => wait_for_addr_file(&path),
        (None, None) => {
            eprintln!(
                "usage: loadgen (--addr ADDR | --addr-file PATH) [--requests N] [--clients C]"
            );
            std::process::exit(2);
        }
    };

    // Schema setup: one batch frame over a throwaway connection. Writes
    // are sequenced globally, so the client sessions see them no matter
    // which replica serves them.
    let mut setup = NetClient::connect(&addr).expect("connect for setup");
    let results = setup
        .call_batch(&[
            "class Staff = class {} end;",
            "class Female = class {} include Staff as fn x => [Name = x.Name] \
             where fn x => query(fn p => p.Sex = \"female\", x) end;",
        ])
        .expect("setup batch");
    for r in &results {
        if let Err((message, kind)) = r {
            panic!("schema setup failed ({kind}): {message}");
        }
    }
    drop(setup);

    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let share = requests / clients + u64::from(c < requests % clients);
            std::thread::spawn(move || client_main(&addr, c, share))
        })
        .collect();
    let mut totals = ClientTotals::default();
    for w in workers {
        totals.merge(&w.join().expect("client thread"));
    }
    let elapsed = started.elapsed();

    assert_eq!(
        totals.reads + totals.writes,
        requests,
        "every request served"
    );
    println!(
        "loadgen: {} requests ({} reads / {} writes) over {} clients in {:?}",
        requests, totals.reads, totals.writes, clients, elapsed
    );
    println!(
        "loadgen: {} busy retries, {} statement errors, {} frames sent",
        totals.busy_retries,
        totals.stmt_errors,
        1 + clients + requests + totals.busy_retries,
    );
    if totals.stmt_errors > 0 {
        std::process::exit(1);
    }
}

#[derive(Default)]
struct ClientTotals {
    reads: u64,
    writes: u64,
    busy_retries: u64,
    stmt_errors: u64,
}

impl ClientTotals {
    fn merge(&mut self, other: &ClientTotals) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.busy_retries += other.busy_retries;
        self.stmt_errors += other.stmt_errors;
    }
}

fn client_main(addr: &str, client: u64, share: u64) -> ClientTotals {
    let mut conn = NetClient::connect(addr).expect("connect");
    conn.hello(100 + client).expect("hello");
    let mut totals = ClientTotals::default();
    for i in 0..share {
        // The E9 mix: every tenth statement is a write.
        let write = i % 10 == 9;
        let stmt = if write {
            totals.writes += 1;
            format!("insert(Staff, IDView([Name = \"L{client}-{i}\", Sex = \"female\"]))")
        } else {
            totals.reads += 1;
            "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Female)".to_string()
        };
        loop {
            match conn.call(&stmt) {
                Ok(_) => break,
                Err(ClientError::Busy) => {
                    totals.busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(ClientError::Server { kind, message }) => {
                    eprintln!("statement failed ({kind}): {message}");
                    totals.stmt_errors += 1;
                    break;
                }
                Err(e) => panic!("wire failure: {e}"),
            }
        }
    }
    totals
}

/// Poll for the server's `--addr-file` (renamed into place once bound).
fn wait_for_addr_file(path: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(contents) = std::fs::read_to_string(path) {
            let addr = contents.trim();
            if !addr.is_empty() {
                return addr.to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "server address file {path} never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

//! Wire-level load generator for the TCP front door
//! (`examples/pool_server.rs --listen`).
//!
//! Drives the E9 90/10 mix from the benchmark suite over loopback:
//! each client thread owns one connection and one session, and issues
//! 90% view reads (`cquery` over the `Female` view) to 10% base-class
//! inserts, using the same `Staff`/`Female` schema as the in-process
//! demo. The schema itself is installed first over a separate
//! connection with a single `batch` frame — one ticket, one log-lock
//! hold for both declarations.
//!
//! With `--stats-polls N` a dedicated connection polls the `stats` and
//! `health` wire ops concurrently with the load: one poll before the
//! load starts (expected `health=healthy` on the idle server), `N − 2`
//! spaced polls while the clients run, and a final poll right after the
//! load that asserts the server's *windowed* read rate is nonzero —
//! the introspection plane observed the load it was serving under.
//! The final assertion needs the server's stats window enabled (pair
//! with `pool_server --stats-interval MS`).
//!
//! Frame budget (for pairing with `pool_server --requests N`):
//! exactly `1 + clients + requests + 2 × stats-polls` frames are sent —
//! the setup batch, one `hello` per client, one `stmt` per request, and
//! one `stats` + one `health` per poll. `busy` responses are retried
//! (and counted); anything else unexpected aborts the run.
//!
//! ```text
//! loadgen --addr 127.0.0.1:4000 [--requests 200] [--clients 4] [--stats-polls P]
//! loadgen --addr-file /tmp/addr [--requests 200] [--clients 4] [--stats-polls P]
//! ```

use polyview::obs::jsonl::JsonValue;
use polyview_net::{ClientError, NetClient};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let requests: u64 = flag_value("--requests").map_or(200, |n| n.parse().expect("--requests N"));
    let clients: u64 = flag_value("--clients").map_or(4, |n| n.parse().expect("--clients N"));
    let clients = clients.max(1);
    let polls: u64 = flag_value("--stats-polls").map_or(0, |n| n.parse().expect("--stats-polls P"));
    let addr = match (flag_value("--addr"), flag_value("--addr-file")) {
        (Some(addr), _) => addr,
        (None, Some(path)) => wait_for_addr_file(&path),
        (None, None) => {
            eprintln!(
                "usage: loadgen (--addr ADDR | --addr-file PATH) [--requests N] [--clients C]"
            );
            std::process::exit(2);
        }
    };

    // Schema setup: one batch frame over a throwaway connection. Writes
    // are sequenced globally, so the client sessions see them no matter
    // which replica serves them.
    let mut setup = NetClient::connect(&addr).expect("connect for setup");
    let results = setup
        .call_batch(&[
            "class Staff = class {} end;",
            "class Female = class {} include Staff as fn x => [Name = x.Name] \
             where fn x => query(fn p => p.Sex = \"female\", x) end;",
        ])
        .expect("setup batch");
    for r in &results {
        if let Err((message, kind)) = r {
            panic!("schema setup failed ({kind}): {message}");
        }
    }
    drop(setup);

    // Poll 1 of `--stats-polls`, before any load: the server should be
    // idle and healthy, with no window yet (or an empty one).
    let mut poller = (polls > 0).then(|| {
        let mut conn = NetClient::connect(&addr).expect("connect for stats polling");
        let poll = poll_stats(&mut conn);
        println!("loadgen: stats poll: {poll}");
        conn
    });

    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let share = requests / clients + u64::from(c < requests % clients);
            std::thread::spawn(move || client_main(&addr, c, share))
        })
        .collect();
    // Polls 2..N−1 run concurrently with the load on their own thread.
    let mid_polls = polls.saturating_sub(2);
    let poll_thread = (mid_polls > 0).then(|| {
        let mut conn = poller.take().expect("polls > 2 implies a poller");
        std::thread::spawn(move || {
            for _ in 0..mid_polls {
                std::thread::sleep(Duration::from_millis(50));
                let poll = poll_stats(&mut conn);
                println!("loadgen: stats poll: {poll}");
            }
            conn
        })
    });
    let mut totals = ClientTotals::default();
    for w in workers {
        totals.merge(&w.join().expect("client thread"));
    }
    let elapsed = started.elapsed();

    if let Some(t) = poll_thread {
        poller = Some(t.join().expect("stats poll thread"));
    }
    if polls >= 2 {
        // Final poll, right after the load: give the server's window
        // interval time to elapse so this poll's tick takes a fresh
        // snapshot, then require the windowed read rate to have seen
        // the load.
        let mut conn = poller.expect("polls >= 2 implies a poller");
        std::thread::sleep(Duration::from_millis(60));
        let poll = poll_stats(&mut conn);
        println!("loadgen: final stats: {poll}");
        if requests > 0 {
            assert!(
                poll.window_span_ns > 0 && poll.read_rate > 0.0,
                "windowed read rate must be nonzero right after load \
                 (is the server running with --stats-interval?): {poll}"
            );
        }
    }

    assert_eq!(
        totals.reads + totals.writes,
        requests,
        "every request served"
    );
    println!(
        "loadgen: {} requests ({} reads / {} writes) over {} clients in {:?}",
        requests, totals.reads, totals.writes, clients, elapsed
    );
    println!(
        "loadgen: {} busy retries, {} statement errors, {} frames sent",
        totals.busy_retries,
        totals.stmt_errors,
        1 + clients + requests + totals.busy_retries + 2 * polls,
    );
    if totals.stmt_errors > 0 {
        std::process::exit(1);
    }
}

/// What one `stats` + `health` poll extracts for the summary lines the
/// verify.sh stats gate greps.
struct StatsPoll {
    verdict: String,
    window_span_ns: u64,
    read_rate: f64,
    log_len: u64,
}

impl std::fmt::Display for StatsPoll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "health={} window_span_ns={} read_rate={:.1} log_len={}",
            self.verdict, self.window_span_ns, self.read_rate, self.log_len
        )
    }
}

/// One poll: a `stats` frame (windowed + cumulative object) and a
/// `health` frame (the verdict), both served as immediates.
fn poll_stats(conn: &mut NetClient) -> StatsPoll {
    let stats = conn.stats().expect("stats op");
    let (verdict, _reasons) = conn.health().expect("health op");
    let window = JsonValue::get(&stats, "window").and_then(JsonValue::as_object);
    let field = |members: &[(String, JsonValue)], key: &str| -> f64 {
        match JsonValue::get(members, key) {
            Some(JsonValue::Num(n)) => *n,
            _ => 0.0,
        }
    };
    StatsPoll {
        verdict,
        window_span_ns: window.map_or(0, |w| field(w, "span_ns") as u64),
        read_rate: window
            .and_then(|w| JsonValue::get(w, "rates").and_then(JsonValue::as_object))
            .map_or(0.0, |r| field(r, "pool.submitted_reads")),
        log_len: JsonValue::get(&stats, "log_len")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
    }
}

#[derive(Default)]
struct ClientTotals {
    reads: u64,
    writes: u64,
    busy_retries: u64,
    stmt_errors: u64,
}

impl ClientTotals {
    fn merge(&mut self, other: &ClientTotals) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.busy_retries += other.busy_retries;
        self.stmt_errors += other.stmt_errors;
    }
}

fn client_main(addr: &str, client: u64, share: u64) -> ClientTotals {
    let mut conn = NetClient::connect(addr).expect("connect");
    conn.hello(100 + client).expect("hello");
    let mut totals = ClientTotals::default();
    for i in 0..share {
        // The E9 mix: every tenth statement is a write.
        let write = i % 10 == 9;
        let stmt = if write {
            totals.writes += 1;
            format!("insert(Staff, IDView([Name = \"L{client}-{i}\", Sex = \"female\"]))")
        } else {
            totals.reads += 1;
            "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Female)".to_string()
        };
        loop {
            match conn.call(&stmt) {
                Ok(_) => break,
                Err(ClientError::Busy) => {
                    totals.busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(ClientError::Server { kind, message }) => {
                    eprintln!("statement failed ({kind}): {message}");
                    totals.stmt_errors += 1;
                    break;
                }
                Err(e) => panic!("wire failure: {e}"),
            }
        }
    }
    totals
}

/// Poll for the server's `--addr-file` (renamed into place once bound).
fn wait_for_addr_file(path: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(contents) = std::fs::read_to_string(path) {
            let addr = contents.trim();
            if !addr.is_empty() {
                return addr.to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "server address file {path} never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

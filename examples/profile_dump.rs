//! Run a Section 4 session with the evaluation profiler attached and dump
//! the attribution profile as JSON lines on stdout — one object per line,
//! every line self-validated with the `polyview::obs::jsonl` checker
//! before it is printed.
//!
//! `scripts/verify.sh` uses this as the profiler smoke gate. The session
//! is built to exercise every attribution channel (DESIGN.md §14):
//!
//! * a mutually recursive `fun step … and same …` group with a
//!   row-polymorphic field read — mutual groups cannot be
//!   index-abstracted, so the read keeps its dynamic lookup and running
//!   it yields *runtime fallback sites*;
//! * a class with the extent cache on, queried around an `insert`, so the
//!   profile carries a *view-recompute* row naming the class and the
//!   epoch that invalidated the cached extent;
//! * a `ManualClock` injected through [`polyview::Engine::set_clock`], so
//!   the whole tree is deterministic.
//!
//! The final `profile.disabled_check` line proves the zero-cost-when-off
//! claim mechanically: a fresh machine with a counting clock installed
//! (but no profiler) evaluates the same shape of work, and the clock's
//! read counter must still be 0.

use polyview::eval::Env;
use polyview::obs::{jsonl, ManualClock};
use polyview::{Engine, Machine};
use std::rc::Rc;

fn emit(lines: &str) {
    for line in lines.lines() {
        jsonl::check_object_line(line)
            .unwrap_or_else(|e| panic!("invalid profile JSON line {line:?}: {e:?}"));
        println!("{line}");
    }
}

fn main() {
    let mut engine = Engine::new();
    engine.set_clock(Rc::new(ManualClock::with_step(10)));
    engine.machine().enable_extent_cache(true);
    engine
        .exec(
            r#"
            class Staff = class {} end;
            insert(Staff, IDView([Steps := 4]));
            insert(Staff, IDView([Steps := 2]));
            fun step r = r.Steps and same r = step(r);
            fun even n = if n = 0 then true else odd(n - 1)
            and odd n = if n = 0 then false else even(n - 1);
            "#,
        )
        .expect("session defines");
    // Warm the extent cache, then invalidate it: the profiled statement's
    // extent scan recomputes at the post-insert epoch.
    engine
        .eval_to_string("cquery(fn s => map(fn o => query(fn x => x.Steps, o), s), Staff)")
        .expect("warm extent");
    engine
        .exec("insert(Staff, IDView([Steps := 3]));")
        .expect("insert invalidates");

    // One statement through every channel: the mutual group's dynamic
    // field ops (fallback sites) and a class extent scan (view recompute).
    let report = engine
        .profile("cquery(fn s => map(fn o => query(fn x => even(step(x)), o), s), Staff)")
        .expect("profiled statement runs");
    assert!(
        !report.profile.fallback_sites.is_empty(),
        "mutual-recursion field ops must attribute fallback sites"
    );
    assert!(
        !report.profile.view_recomputes.is_empty(),
        "the cquery must attribute an extent scan"
    );
    emit(&report.to_json_lines());

    // The zero-cost-when-off proof: a machine holding a counting clock but
    // no profiler must never read it.
    let counting = Rc::new(ManualClock::with_step(10));
    let mut machine = Machine::new();
    machine.set_profile_clock(counting.clone());
    let e = polyview::parser::parse_expr("let f = fn x => x + 1 in f (f 40) end")
        .expect("probe parses");
    let v = machine.eval_in(&e, &Env::empty()).expect("probe evaluates");
    assert_eq!(format!("{v:?}"), "Int(42)");
    let line = format!(
        "{{\"kind\":\"profile.disabled_check\",\"disabled_clock_reads\":{},\"profiling\":{}}}",
        counting.reads(),
        machine.profiling(),
    );
    emit(&line);
}
